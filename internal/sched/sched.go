package sched

import (
	"fmt"
	"sort"

	"probqos/internal/predict"
	"probqos/internal/units"
)

// Candidate is one schedulable option for a job: a start time, a concrete
// node set, and the predicted probability that this partition fails during
// the reservation window. The negotiation layer walks successive candidates
// quoting (deadline, probability) pairs to the user.
type Candidate struct {
	Start units.Time `json:"start"`
	Nodes []int      `json:"nodes"`
	PFail float64    `json:"pfail"`
}

// Reservation records a job's committed placement.
type Reservation struct {
	JobID    int
	Start    units.Time
	Duration units.Duration
	Nodes    []int
	PFail    float64
}

// End returns the reserved end instant.
func (r Reservation) End() units.Time { return r.Start.Add(r.Duration) }

// Option configures a Scheduler.
type Option interface{ apply(*Scheduler) }

type optionFunc func(*Scheduler)

func (f optionFunc) apply(s *Scheduler) { f(s) }

// WithFaultAware toggles prediction-driven node selection. When disabled
// the scheduler picks the lowest-numbered free nodes (first fit), the
// non-fault-aware baseline.
func WithFaultAware(enabled bool) Option {
	return optionFunc(func(s *Scheduler) { s.faultAware = enabled })
}

// WithMaxCandidates bounds how many candidate start times a single
// Candidates walk examines before giving up. Defaults to 512.
func WithMaxCandidates(n int) Option {
	return optionFunc(func(s *Scheduler) { s.maxCandidates = n })
}

// WithQuoteSlack widens the risk window used for quoting and node selection
// to [start-slack, start+duration). A failure shortly *before* a job's
// start knocks its nodes down for the restart time and slips the start, so
// quoting over the widened window makes the promise honest about that
// hazard. The simulator sets the slack to the node downtime. Defaults to 0.
func WithQuoteSlack(d units.Duration) Option {
	return optionFunc(func(s *Scheduler) { s.quoteSlack = d })
}

// Scheduler owns the availability profile and performs conservative
// backfilling: jobs get the earliest reservation that does not disturb any
// existing reservation, which implicitly backfills small jobs around the
// head of the queue.
type Scheduler struct {
	n             int
	profile       *profile
	predictor     predict.Predictor
	nodePred      predict.NodePredictor      // predictor's single-node fast path, nil without one
	batchPred     predict.BatchNodePredictor // predictor's batched scoring path, nil without one
	reservations  map[int]*Reservation
	faultAware    bool
	maxCandidates int
	quoteSlack    units.Duration

	// Scratch buffers reused across Candidates walks. The scheduler is
	// single-threaded by design (the simulator and qosd both serialize
	// access), so per-call allocation here is pure overhead: a quote walk
	// visits up to maxCandidates starts and scores every free node at each.
	freeScratch   []int
	scoredScratch []scoredNode
	riskScratch   []float64
	timesScratch  candidateTimes
	singleton     [1]int

	// resFree recycles Reservation records (and their node slices) released
	// by Release/CompleteEarly. Reservations churn once per admit and once
	// per failure restart, so without recycling they are the simulator's
	// largest allocation source. A recycled record is only handed out again
	// after its owner released it, by which point the engine no longer reads
	// the old node set.
	resFree []*Reservation
}

// scoredNode pairs a node with its predicted window risk during selection.
type scoredNode struct {
	node int
	risk float64
}

// New creates a scheduler for a cluster of n nodes using the predictor for
// fault-aware placement.
func New(n int, p predict.Predictor, opts ...Option) *Scheduler {
	if n <= 0 {
		panic(fmt.Sprintf("sched: need a positive node count, got %d", n))
	}
	if p == nil {
		p = predict.Null{}
	}
	s := &Scheduler{
		n:             n,
		profile:       newProfile(n),
		predictor:     p,
		reservations:  make(map[int]*Reservation),
		faultAware:    true,
		maxCandidates: 512,
	}
	if np, ok := p.(predict.NodePredictor); ok {
		s.nodePred = np
	}
	if bp, ok := p.(predict.BatchNodePredictor); ok {
		s.batchPred = bp
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// pfailNode scores one node over a window through the predictor's fast path
// when it has one; the fallback reuses a persistent one-element slice so the
// hot loop stays allocation-free either way.
func (s *Scheduler) pfailNode(node int, from, to units.Time) float64 {
	if s.nodePred != nil {
		return s.nodePred.PFailNode(node, from, to)
	}
	s.singleton[0] = node
	return s.predictor.PFail(s.singleton[:], from, to)
}

// N returns the cluster size.
func (s *Scheduler) N() int { return s.n }

// Candidates walks schedulable options for a job of the given size and
// duration, earliest first, calling yield for each until yield returns
// false or the candidate budget is exhausted. Every yielded candidate is
// feasible: its nodes are free for [Start, Start+duration) in the current
// profile. The node set of each candidate is the risk-minimizing choice at
// that start time (or first-fit when fault-awareness is off).
//
// The walk reuses scheduler-owned scratch buffers, so yield must not call
// back into Candidates or EarliestCandidate on the same Scheduler.
//
// Candidates returns the number of options yielded.
func (s *Scheduler) Candidates(from units.Time, size int, duration units.Duration, yield func(Candidate) bool) int {
	if size <= 0 || size > s.n || duration <= 0 {
		return 0
	}
	yielded := 0
	emit := func(start units.Time) bool {
		nodes := s.pickNodes(start, size, duration)
		if nodes == nil {
			return true // infeasible here, keep walking
		}
		pf := s.predictor.PFail(nodes, start.Add(-s.quoteSlack), start.Add(duration))
		yielded++
		return yield(Candidate{Start: start, Nodes: nodes, PFail: pf})
	}

	// Fast path: the request may fit right now.
	if !emit(from) {
		return yielded
	}
	examined := 1
	ct := &s.timesScratch
	s.profile.collectCandidateTimes(ct, from)
	for {
		t, ok := ct.next()
		if !ok {
			break
		}
		if examined >= s.maxCandidates {
			break
		}
		examined++
		if !emit(t) {
			return yielded
		}
	}
	// Fallback when the candidate budget ran out: after the last known busy
	// interval the whole machine is free, so that instant is always
	// feasible. (If the loop visited every time, this was already covered.)
	if examined >= s.maxCandidates && ct.max > from {
		emit(ct.max)
	}
	return yielded
}

// EarliestCandidate returns the first schedulable option at or after from.
// The second return is false only for invalid requests.
func (s *Scheduler) EarliestCandidate(from units.Time, size int, duration units.Duration) (Candidate, bool) {
	var (
		out   Candidate
		found bool
	)
	s.Candidates(from, size, duration, func(c Candidate) bool {
		out, found = c, true
		return false
	})
	return out, found
}

// pickNodes selects size nodes free during [start, start+duration), or nil
// if fewer than size are free. With fault-awareness on, nodes with no
// predicted failure in the window come first, then nodes whose first
// detectable failure has the smallest reported probability; ties break on
// node ID for determinism.
func (s *Scheduler) pickNodes(start units.Time, size int, duration units.Duration) []int {
	end := start.Add(duration)
	riskFrom := start.Add(-s.quoteSlack)
	free := s.freeScratch[:0]
	for n := 0; n < s.n; n++ {
		if s.profile.freeDuring(n, start, end) {
			free = append(free, n)
		}
	}
	s.freeScratch = free
	if len(free) < size {
		return nil
	}
	if !s.faultAware {
		return append([]int(nil), free[:size]...)
	}
	// Batched scoring: one predictor call prices every free node over the
	// window (one pass over the trace index) instead of one interface call
	// per node. The fallback keeps the per-node fast path.
	var risks []float64
	if s.batchPred != nil {
		risks = s.batchPred.AppendPFailNodes(s.riskScratch[:0], free, riskFrom, end)
		s.riskScratch = risks
	}
	// Partial selection: only the size lowest-risk nodes are wanted, so a
	// bounded max-heap (O(free · log size)) replaces sorting every free
	// node. (risk, node) is a total order, so the selected set — and hence
	// the returned candidate — is identical to what the full sort chose.
	heap := s.scoredScratch[:0]
	for i, n := range free {
		var risk float64
		if risks != nil {
			risk = risks[i]
		} else {
			risk = s.pfailNode(n, riskFrom, end)
		}
		cand := scoredNode{node: n, risk: risk}
		if len(heap) < size {
			heap = append(heap, cand)
			heapSiftUp(heap, len(heap)-1)
		} else if scoredLess(cand, heap[0]) {
			heap[0] = cand
			heapSiftDown(heap, 0)
		}
	}
	s.scoredScratch = heap
	nodes := make([]int, size)
	for i, sc := range heap {
		nodes[i] = sc.node
	}
	sort.Ints(nodes)
	return nodes
}

// scoredLess orders node selection: nodes with no predicted failure first,
// then the smallest reported probability, ties broken on node ID for
// determinism.
func scoredLess(a, b scoredNode) bool {
	//qoslint:allow floateq comparator tie-break; an epsilon here would break ordering transitivity and determinism
	if a.risk != b.risk {
		return a.risk < b.risk
	}
	return a.node < b.node
}

// heapSiftUp restores the max-heap property (under scoredLess) after
// appending at index i.
func heapSiftUp(h []scoredNode, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !scoredLess(h[parent], h[i]) {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// heapSiftDown restores the max-heap property after replacing the root.
func heapSiftDown(h []scoredNode, i int) {
	for {
		largest := i
		if l := 2*i + 1; l < len(h) && scoredLess(h[largest], h[l]) {
			largest = l
		}
		if r := 2*i + 2; r < len(h) && scoredLess(h[largest], h[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// Reserve commits a candidate for a job, inserting its busy intervals into
// the profile. It returns the created reservation, or an error if the job
// already holds one or the candidate's nodes are no longer free.
func (s *Scheduler) Reserve(jobID int, c Candidate, duration units.Duration) (*Reservation, error) {
	if _, ok := s.reservations[jobID]; ok {
		return nil, fmt.Errorf("sched: job %d already holds a reservation", jobID)
	}
	end := c.Start.Add(duration)
	for _, n := range c.Nodes {
		if !s.profile.freeDuring(n, c.Start, end) {
			return nil, fmt.Errorf("sched: node %d is no longer free at %v for job %d", n, c.Start, jobID)
		}
	}
	r := s.getReservation()
	r.JobID = jobID
	r.Start = c.Start
	r.Duration = duration
	r.Nodes = append(r.Nodes[:0], c.Nodes...)
	r.PFail = c.PFail
	for _, n := range r.Nodes {
		s.profile.insert(n, interval{start: r.Start, end: r.End(), owner: jobID})
	}
	s.reservations[jobID] = r
	return r, nil
}

// getReservation hands out a recycled Reservation (node slice capacity and
// all) or a fresh one. Callers must overwrite every field.
func (s *Scheduler) getReservation() *Reservation {
	if n := len(s.resFree); n > 0 {
		r := s.resFree[n-1]
		s.resFree = s.resFree[:n-1]
		return r
	}
	return &Reservation{}
}

// ForceReserve reserves the given nodes for a job without checking that
// they are free. It exists for failure restarts: migration is disabled
// (§3.3), so a failed job restarts on its own just-freed partition as soon
// as the failed node recovers, and any later reservation it now overlaps
// simply slips when its start finds the nodes occupied. The overlapped
// profile region reads as busy, so new jobs still schedule around it.
func (s *Scheduler) ForceReserve(jobID int, nodes []int, start units.Time, duration units.Duration) (*Reservation, error) {
	if _, ok := s.reservations[jobID]; ok {
		return nil, fmt.Errorf("sched: job %d already holds a reservation", jobID)
	}
	r := s.getReservation()
	r.JobID = jobID
	r.Start = start
	r.Duration = duration
	r.Nodes = append(r.Nodes[:0], nodes...)
	r.PFail = 0
	for _, n := range r.Nodes {
		s.profile.insert(n, interval{start: r.Start, end: r.End(), owner: jobID})
	}
	s.reservations[jobID] = r
	return r, nil
}

// Reservation returns the job's current reservation, if any.
func (s *Scheduler) Reservation(jobID int) (*Reservation, bool) {
	r, ok := s.reservations[jobID]
	return r, ok
}

// Release drops the job's reservation entirely (job failed or was
// cancelled); its profile intervals are removed so later jobs can use the
// space. If at falls inside the reservation, the interval up to at is kept
// implicitly free because the past does not matter for scheduling.
func (s *Scheduler) Release(jobID int) {
	r, ok := s.reservations[jobID]
	if !ok {
		return
	}
	for _, n := range r.Nodes {
		s.profile.removeOwner(n, jobID)
	}
	delete(s.reservations, jobID)
	s.resFree = append(s.resFree, r)
}

// CompleteEarly truncates the job's reservation at the actual completion
// instant (jobs that skip checkpoints finish before their reserved end) and
// forgets the reservation.
func (s *Scheduler) CompleteEarly(jobID int, at units.Time) {
	r, ok := s.reservations[jobID]
	if !ok {
		return
	}
	for _, n := range r.Nodes {
		s.profile.truncateOwner(n, jobID, at)
	}
	delete(s.reservations, jobID)
	s.resFree = append(s.resFree, r)
}

// Slip moves the job's reservation to a later start (its nodes were down at
// start time). Following the paper there is no re-optimization: the node
// set is kept, the interval just shifts.
func (s *Scheduler) Slip(jobID int, newStart units.Time) error {
	r, ok := s.reservations[jobID]
	if !ok {
		return fmt.Errorf("sched: job %d holds no reservation to slip", jobID)
	}
	for _, n := range r.Nodes {
		s.profile.shiftOwner(n, jobID, newStart)
	}
	r.Start = newStart
	return nil
}

// AddDowntime records a node outage in the profile so no new reservation is
// placed on the node while it is down.
func (s *Scheduler) AddDowntime(node int, from, to units.Time) {
	s.profile.insert(node, interval{start: from, end: to, owner: DowntimeOwner})
}

// BusyUntil returns when the node next becomes free according to the
// profile, starting from at.
func (s *Scheduler) BusyUntil(node int, at units.Time) units.Time {
	return s.profile.busyUntil(node, at)
}

// GC discards profile history that ended at or before now. Call it
// periodically from the simulation loop.
func (s *Scheduler) GC(now units.Time) { s.profile.gc(now) }

// ValidateProfile checks internal invariants (no overlapping job
// reservations on any node). Tests and the simulator's debug mode use it.
func (s *Scheduler) ValidateProfile() error { return s.profile.validate() }
