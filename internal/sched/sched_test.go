package sched

import (
	"testing"

	"probqos/internal/failure"
	"probqos/internal/predict"
	"probqos/internal/units"
)

func newPredictor(t *testing.T, a float64, events ...failure.Event) *predict.Trace {
	t.Helper()
	tr, err := failure.NewTrace(8, events)
	if err != nil {
		t.Fatal(err)
	}
	p, err := predict.NewTrace(tr, a)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEarliestCandidateOnEmptyCluster(t *testing.T) {
	s := New(8, nil)
	c, ok := s.EarliestCandidate(100, 4, 50)
	if !ok {
		t.Fatal("expected a candidate")
	}
	if c.Start != 100 {
		t.Errorf("start = %v, want 100 (immediate)", c.Start)
	}
	if len(c.Nodes) != 4 {
		t.Errorf("nodes = %v", c.Nodes)
	}
	if c.PFail != 0 {
		t.Errorf("pfail = %v, want 0 for null predictor", c.PFail)
	}
}

func TestCandidatesRejectsBadRequests(t *testing.T) {
	s := New(8, nil)
	for _, tt := range []struct {
		name string
		size int
		dur  units.Duration
	}{
		{name: "zero size", size: 0, dur: 10},
		{name: "too large", size: 9, dur: 10},
		{name: "zero duration", size: 1, dur: 0},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Candidates(0, tt.size, tt.dur, func(Candidate) bool { return true }); got != 0 {
				t.Errorf("Candidates yielded %d options", got)
			}
		})
	}
}

func TestReserveBlocksOverlap(t *testing.T) {
	s := New(4, nil)
	c, _ := s.EarliestCandidate(0, 4, 100)
	if _, err := s.Reserve(1, c, 100); err != nil {
		t.Fatal(err)
	}
	// The whole machine is taken; the next job must start at 100.
	c2, ok := s.EarliestCandidate(0, 2, 50)
	if !ok {
		t.Fatal("expected a candidate")
	}
	if c2.Start != 100 {
		t.Errorf("second job start = %v, want 100", c2.Start)
	}
	if err := s.ValidateProfile(); err != nil {
		t.Error(err)
	}
}

func TestReserveErrors(t *testing.T) {
	s := New(4, nil)
	c, _ := s.EarliestCandidate(0, 2, 100)
	if _, err := s.Reserve(1, c, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve(1, c, 100); err == nil {
		t.Error("double reservation for one job must fail")
	}
	if _, err := s.Reserve(2, c, 100); err == nil {
		t.Error("reserving occupied nodes must fail")
	}
}

func TestBackfillingAroundReservation(t *testing.T) {
	s := New(4, nil)
	// Wide job takes the whole machine at [100, 200).
	wide, _ := s.EarliestCandidate(100, 4, 100)
	if _, err := s.Reserve(1, wide, 100); err != nil {
		t.Fatal(err)
	}
	// A short narrow job fits in the hole before the wide job: backfilled.
	c, ok := s.EarliestCandidate(0, 2, 100)
	if !ok || c.Start != 0 {
		t.Fatalf("backfill candidate = %+v ok=%v, want start 0", c, ok)
	}
	// A narrow job that is too long to finish by 100 must wait until 200.
	c2, ok := s.EarliestCandidate(0, 2, 150)
	if !ok || c2.Start != 200 {
		t.Fatalf("long narrow candidate = %+v ok=%v, want start 200", c2, ok)
	}
}

func TestFaultAwareNodeSelection(t *testing.T) {
	// Node 2 has a highly detectable failure inside the window; node 5 has
	// an invisible one.
	p := newPredictor(t, 0.5,
		failure.Event{Time: 50, Node: 2, Detectability: 0.3},
		failure.Event{Time: 50, Node: 5, Detectability: 0.9},
	)
	s := New(8, p)
	c, ok := s.EarliestCandidate(0, 7, 100)
	if !ok {
		t.Fatal("expected candidate")
	}
	for _, n := range c.Nodes {
		if n == 2 {
			t.Errorf("risky node 2 selected despite alternatives: %v", c.Nodes)
		}
	}
	if c.PFail != 0 {
		t.Errorf("PFail = %v, want 0 after avoiding the detectable failure", c.PFail)
	}

	// Needing all 8 nodes forces the risky one in, and the quote says so.
	c8, ok := s.EarliestCandidate(0, 8, 100)
	if !ok {
		t.Fatal("expected candidate")
	}
	if c8.PFail != 0.3 {
		t.Errorf("PFail = %v, want 0.3 with node 2 included", c8.PFail)
	}
}

func TestFirstFitIgnoresRisk(t *testing.T) {
	p := newPredictor(t, 1,
		failure.Event{Time: 50, Node: 0, Detectability: 0.4},
	)
	s := New(8, p, WithFaultAware(false))
	c, ok := s.EarliestCandidate(0, 2, 100)
	if !ok {
		t.Fatal("expected candidate")
	}
	if c.Nodes[0] != 0 || c.Nodes[1] != 1 {
		t.Errorf("first-fit nodes = %v, want [0 1]", c.Nodes)
	}
	if c.PFail != 0.4 {
		t.Errorf("PFail = %v, want 0.4 (risk reported but not avoided)", c.PFail)
	}
}

func TestCompleteEarlyFreesTail(t *testing.T) {
	s := New(2, nil)
	c, _ := s.EarliestCandidate(0, 2, 1000)
	if _, err := s.Reserve(1, c, 1000); err != nil {
		t.Fatal(err)
	}
	s.CompleteEarly(1, 400)
	if _, ok := s.Reservation(1); ok {
		t.Error("reservation should be forgotten")
	}
	c2, ok := s.EarliestCandidate(0, 2, 100)
	if !ok || c2.Start != 400 {
		t.Fatalf("candidate after early completion = %+v, want start 400", c2)
	}
}

func TestReleaseFreesEverything(t *testing.T) {
	s := New(2, nil)
	c, _ := s.EarliestCandidate(100, 2, 1000)
	if _, err := s.Reserve(1, c, 1000); err != nil {
		t.Fatal(err)
	}
	s.Release(1)
	c2, ok := s.EarliestCandidate(0, 2, 100)
	if !ok || c2.Start != 0 {
		t.Fatalf("candidate after release = %+v, want start 0", c2)
	}
	// Releasing twice is a no-op.
	s.Release(1)
}

func TestSlipMovesReservation(t *testing.T) {
	s := New(2, nil)
	c, _ := s.EarliestCandidate(100, 2, 100)
	r, err := s.Reserve(1, c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Slip(1, 150); err != nil {
		t.Fatal(err)
	}
	if r.Start != 150 || r.End() != 250 {
		t.Errorf("slipped reservation = [%v, %v)", r.Start, r.End())
	}
	// The vacated window opens up; the shifted window is busy.
	if got, _ := s.EarliestCandidate(100, 2, 50); got.Start != 100 {
		t.Errorf("vacated slot start = %v, want 100", got.Start)
	}
	if got, _ := s.EarliestCandidate(150, 2, 50); got.Start != 250 {
		t.Errorf("post-slip slot start = %v, want 250", got.Start)
	}
	if err := s.Slip(99, 0); err == nil {
		t.Error("slipping an unknown job must fail")
	}
}

func TestAddDowntimeBlocksScheduling(t *testing.T) {
	s := New(2, nil)
	s.AddDowntime(0, 0, 500)
	c, ok := s.EarliestCandidate(0, 2, 100)
	if !ok || c.Start != 500 {
		t.Fatalf("candidate with node down = %+v, want start 500", c)
	}
	// A one-node job can use the healthy node immediately.
	c1, _ := s.EarliestCandidate(0, 1, 100)
	if c1.Start != 0 || c1.Nodes[0] != 1 {
		t.Errorf("one-node candidate = %+v", c1)
	}
	if got := s.BusyUntil(0, 100); got != 500 {
		t.Errorf("BusyUntil = %v, want 500", got)
	}
}

func TestCandidateBudgetFallback(t *testing.T) {
	s := New(2, nil, WithMaxCandidates(2))
	// Stack many short reservations so the walk exhausts its budget.
	at := units.Time(0)
	for job := 1; job <= 10; job++ {
		c, ok := s.EarliestCandidate(at, 2, 100)
		if !ok {
			t.Fatal("expected candidate")
		}
		if _, err := s.Reserve(job, c, 100); err != nil {
			t.Fatal(err)
		}
		at = c.Start
	}
	// Despite the tiny budget, a feasible candidate must still be found at
	// the horizon (after the last reservation).
	c, ok := s.EarliestCandidate(0, 2, 100)
	if !ok {
		t.Fatal("budget fallback failed to produce a candidate")
	}
	if c.Start != 1000 {
		t.Errorf("fallback start = %v, want 1000", c.Start)
	}
}

func TestGCKeepsFutureReservations(t *testing.T) {
	s := New(2, nil)
	c, _ := s.EarliestCandidate(1000, 2, 100)
	if _, err := s.Reserve(1, c, 100); err != nil {
		t.Fatal(err)
	}
	s.GC(500)
	if got, _ := s.EarliestCandidate(1000, 2, 100); got.Start != 1100 {
		t.Errorf("reservation lost by GC: candidate start = %v", got.Start)
	}
}

func TestNewPanicsOnBadClusterSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, nil)
}
