package sched

import (
	"testing"

	"probqos/internal/failure"
	"probqos/internal/predict"
	"probqos/internal/stats"
	"probqos/internal/units"
)

// TestRandomOperationSequencesKeepProfileConsistent drives the scheduler
// with random reserve/complete/release/slip/downtime sequences and checks
// the core invariants after every step: job reservations never overlap on
// a node, and every candidate the scheduler offers is genuinely free.
func TestRandomOperationSequencesKeepProfileConsistent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := stats.NewSource(seed)
		s := New(16, nil)
		type live struct {
			id  int
			res *Reservation
		}
		var reservations []live
		nextID := 1
		now := units.Time(0)

		for step := 0; step < 300; step++ {
			now = now.Add(units.Duration(src.Intn(120)))
			switch op := src.Intn(10); {
			case op < 5: // reserve a new job
				size := 1 + src.Intn(16)
				dur := units.Duration(60 + src.Intn(4000))
				c, ok := s.EarliestCandidate(now, size, dur)
				if !ok {
					t.Fatalf("seed %d step %d: no candidate", seed, step)
				}
				r, err := s.Reserve(nextID, c, dur)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				reservations = append(reservations, live{id: nextID, res: r})
				nextID++
			case op < 7: // complete one early
				if len(reservations) == 0 {
					continue
				}
				k := src.Intn(len(reservations))
				r := reservations[k]
				at := r.res.Start.Add(units.Duration(src.Intn(int(r.res.Duration) + 1)))
				s.CompleteEarly(r.id, at)
				reservations = append(reservations[:k], reservations[k+1:]...)
			case op < 8: // release one (failure path)
				if len(reservations) == 0 {
					continue
				}
				k := src.Intn(len(reservations))
				s.Release(reservations[k].id)
				reservations = append(reservations[:k], reservations[k+1:]...)
			case op < 9: // slip one later
				if len(reservations) == 0 {
					continue
				}
				k := src.Intn(len(reservations))
				r := reservations[k]
				if err := s.Slip(r.id, r.res.Start.Add(units.Duration(1+src.Intn(600)))); err != nil {
					t.Fatalf("seed %d step %d: slip: %v", seed, step, err)
				}
			default: // a node outage
				node := src.Intn(16)
				s.AddDowntime(node, now, now.Add(units.Duration(30+src.Intn(300))))
			}

			// Slips may legally overlap job intervals (the simulator resolves
			// them at start time); only validate on slip-free prefixes.
			// Instead check the offer invariant, which must always hold: a
			// fresh candidate's nodes are free for its whole window.
			c, ok := s.EarliestCandidate(now, 1+src.Intn(8), units.Duration(60+src.Intn(1000)))
			if !ok {
				t.Fatalf("seed %d step %d: no verification candidate", seed, step)
			}
			end := c.Start.Add(units.Duration(60))
			for _, n := range c.Nodes {
				if !s.profile.freeDuring(n, c.Start, end) {
					t.Fatalf("seed %d step %d: offered node %d busy at %v", seed, step, n, c.Start)
				}
			}
		}
	}
}

// TestEveryCandidateIsReservable pins the feasibility claim Candidates
// makes — including the budget-exhausted fallback's "after the last known
// busy interval the whole machine is free, so that instant is always
// feasible". Random profiles (reservations, outages, overlapping forced
// restarts) are hammered with walks under a tiny candidate budget so the
// fallback fires constantly, and every yielded candidate must pass Reserve.
func TestEveryCandidateIsReservable(t *testing.T) {
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 7}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := predict.NewTrace(tr, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 25; seed++ {
		src := stats.NewSource(seed)
		const nodes = 16
		s := New(nodes, pred,
			WithMaxCandidates(1+src.Intn(5)), // force the fallback path often
			WithQuoteSlack(units.Duration(src.Intn(600))),
		)
		nextID := 1
		now := units.Time(0)
		for step := 0; step < 120; step++ {
			now = now.Add(units.Duration(src.Intn(900)))
			switch src.Intn(4) {
			case 0, 1: // a regular reservation
				size := 1 + src.Intn(nodes)
				dur := units.Duration(60 + src.Intn(5000))
				if c, ok := s.EarliestCandidate(now, size, dur); ok {
					if _, err := s.Reserve(nextID, c, dur); err != nil {
						t.Fatalf("seed %d step %d: reserve: %v", seed, step, err)
					}
					nextID++
				}
			case 2: // a node outage, possibly overlapping reservations
				n := src.Intn(nodes)
				s.AddDowntime(n, now, now.Add(units.Duration(30+src.Intn(2000))))
			default: // a forced restart overlapping whatever is there
				k := 1 + src.Intn(4)
				set := make([]int, 0, k)
				for len(set) < k {
					n := src.Intn(nodes)
					dup := false
					for _, m := range set {
						if m == n {
							dup = true
							break
						}
					}
					if !dup {
						set = append(set, n)
					}
				}
				if _, err := s.ForceReserve(nextID, set, now, units.Duration(60+src.Intn(3000))); err == nil {
					nextID++
				}
			}

			size := 1 + src.Intn(nodes)
			dur := units.Duration(60 + src.Intn(4000))
			probeID := 1_000_000 + step
			s.Candidates(now, size, dur, func(c Candidate) bool {
				if len(c.Nodes) != size {
					t.Fatalf("seed %d step %d: candidate has %d nodes, want %d", seed, step, len(c.Nodes), size)
				}
				if _, err := s.Reserve(probeID, c, dur); err != nil {
					t.Fatalf("seed %d step %d: yielded candidate at %v not reservable: %v", seed, step, c.Start, err)
				}
				s.Release(probeID)
				return true // walk the whole budget so the fallback candidate is exercised
			})
		}
	}
}

// TestRandomReservationsNeverOverlap drives reserve/complete cycles with no
// slips, where the strict no-overlap invariant must hold continuously.
func TestRandomReservationsNeverOverlap(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		src := stats.NewSource(seed)
		s := New(8, nil)
		now := units.Time(0)
		for job := 1; job <= 150; job++ {
			now = now.Add(units.Duration(src.Intn(200)))
			size := 1 + src.Intn(8)
			dur := units.Duration(30 + src.Intn(2000))
			c, ok := s.EarliestCandidate(now, size, dur)
			if !ok {
				t.Fatal("no candidate")
			}
			if _, err := s.Reserve(job, c, dur); err != nil {
				t.Fatalf("seed %d job %d: %v", seed, job, err)
			}
			if err := s.ValidateProfile(); err != nil {
				t.Fatalf("seed %d job %d: %v", seed, job, err)
			}
			s.GC(now)
		}
	}
}
