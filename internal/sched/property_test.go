package sched

import (
	"testing"

	"probqos/internal/stats"
	"probqos/internal/units"
)

// TestRandomOperationSequencesKeepProfileConsistent drives the scheduler
// with random reserve/complete/release/slip/downtime sequences and checks
// the core invariants after every step: job reservations never overlap on
// a node, and every candidate the scheduler offers is genuinely free.
func TestRandomOperationSequencesKeepProfileConsistent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := stats.NewSource(seed)
		s := New(16, nil)
		type live struct {
			id  int
			res *Reservation
		}
		var reservations []live
		nextID := 1
		now := units.Time(0)

		for step := 0; step < 300; step++ {
			now = now.Add(units.Duration(src.Intn(120)))
			switch op := src.Intn(10); {
			case op < 5: // reserve a new job
				size := 1 + src.Intn(16)
				dur := units.Duration(60 + src.Intn(4000))
				c, ok := s.EarliestCandidate(now, size, dur)
				if !ok {
					t.Fatalf("seed %d step %d: no candidate", seed, step)
				}
				r, err := s.Reserve(nextID, c, dur)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				reservations = append(reservations, live{id: nextID, res: r})
				nextID++
			case op < 7: // complete one early
				if len(reservations) == 0 {
					continue
				}
				k := src.Intn(len(reservations))
				r := reservations[k]
				at := r.res.Start.Add(units.Duration(src.Intn(int(r.res.Duration) + 1)))
				s.CompleteEarly(r.id, at)
				reservations = append(reservations[:k], reservations[k+1:]...)
			case op < 8: // release one (failure path)
				if len(reservations) == 0 {
					continue
				}
				k := src.Intn(len(reservations))
				s.Release(reservations[k].id)
				reservations = append(reservations[:k], reservations[k+1:]...)
			case op < 9: // slip one later
				if len(reservations) == 0 {
					continue
				}
				k := src.Intn(len(reservations))
				r := reservations[k]
				if err := s.Slip(r.id, r.res.Start.Add(units.Duration(1+src.Intn(600)))); err != nil {
					t.Fatalf("seed %d step %d: slip: %v", seed, step, err)
				}
			default: // a node outage
				node := src.Intn(16)
				s.AddDowntime(node, now, now.Add(units.Duration(30+src.Intn(300))))
			}

			// Slips may legally overlap job intervals (the simulator resolves
			// them at start time); only validate on slip-free prefixes.
			// Instead check the offer invariant, which must always hold: a
			// fresh candidate's nodes are free for its whole window.
			c, ok := s.EarliestCandidate(now, 1+src.Intn(8), units.Duration(60+src.Intn(1000)))
			if !ok {
				t.Fatalf("seed %d step %d: no verification candidate", seed, step)
			}
			end := c.Start.Add(units.Duration(60))
			for _, n := range c.Nodes {
				if !s.profile.freeDuring(n, c.Start, end) {
					t.Fatalf("seed %d step %d: offered node %d busy at %v", seed, step, n, c.Start)
				}
			}
		}
	}
}

// TestRandomReservationsNeverOverlap drives reserve/complete cycles with no
// slips, where the strict no-overlap invariant must hold continuously.
func TestRandomReservationsNeverOverlap(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		src := stats.NewSource(seed)
		s := New(8, nil)
		now := units.Time(0)
		for job := 1; job <= 150; job++ {
			now = now.Add(units.Duration(src.Intn(200)))
			size := 1 + src.Intn(8)
			dur := units.Duration(30 + src.Intn(2000))
			c, ok := s.EarliestCandidate(now, size, dur)
			if !ok {
				t.Fatal("no candidate")
			}
			if _, err := s.Reserve(job, c, dur); err != nil {
				t.Fatalf("seed %d job %d: %v", seed, job, err)
			}
			if err := s.ValidateProfile(); err != nil {
				t.Fatalf("seed %d job %d: %v", seed, job, err)
			}
			s.GC(now)
		}
	}
}
