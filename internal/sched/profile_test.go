package sched

import (
	"testing"
	"testing/quick"

	"probqos/internal/units"
)

func TestProfileInsertAndFreeDuring(t *testing.T) {
	p := newProfile(2)
	p.insert(0, interval{start: 100, end: 200, owner: 1})
	p.insert(0, interval{start: 300, end: 400, owner: 2})
	tests := []struct {
		name     string
		from, to units.Time
		want     bool
	}{
		{name: "before all", from: 0, to: 100, want: true},
		{name: "overlap first start", from: 50, to: 101, want: false},
		{name: "inside first", from: 150, to: 160, want: false},
		{name: "gap exactly", from: 200, to: 300, want: true},
		{name: "spans gap and second", from: 250, to: 350, want: false},
		{name: "after all", from: 400, to: 1000, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.freeDuring(0, tt.from, tt.to); got != tt.want {
				t.Errorf("freeDuring(%v,%v) = %v, want %v", tt.from, tt.to, got, tt.want)
			}
		})
	}
	if !p.freeDuring(1, 0, units.Forever) {
		t.Error("untouched node should be free forever")
	}
}

func TestProfileInsertIgnoresEmptyIntervals(t *testing.T) {
	p := newProfile(1)
	p.insert(0, interval{start: 100, end: 100, owner: 1})
	p.insert(0, interval{start: 100, end: 50, owner: 1})
	if len(p.nodes[0]) != 0 {
		t.Errorf("empty intervals stored: %+v", p.nodes[0])
	}
}

func TestBusyUntilChains(t *testing.T) {
	p := newProfile(1)
	p.insert(0, interval{start: 100, end: 200, owner: 1})
	p.insert(0, interval{start: 200, end: 300, owner: 2})
	p.insert(0, interval{start: 150, end: 250, owner: DowntimeOwner})
	tests := []struct {
		at   units.Time
		want units.Time
	}{
		{at: 50, want: 50},   // free now
		{at: 100, want: 300}, // chained through all three
		{at: 250, want: 300}, // inside the last interval
		{at: 300, want: 300}, // free at the boundary
		{at: 1000, want: 1000},
	}
	for _, tt := range tests {
		if got := p.busyUntil(0, tt.at); got != tt.want {
			t.Errorf("busyUntil(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestRemoveAndTruncateOwner(t *testing.T) {
	p := newProfile(1)
	p.insert(0, interval{start: 100, end: 200, owner: 1})
	p.insert(0, interval{start: 300, end: 400, owner: 2})
	p.removeOwner(0, 1)
	if !p.freeDuring(0, 100, 200) {
		t.Error("owner 1's interval should be gone")
	}
	if p.freeDuring(0, 300, 400) {
		t.Error("owner 2's interval should remain")
	}
	p.truncateOwner(0, 2, 350)
	if !p.freeDuring(0, 350, 1000) {
		t.Error("truncated interval should free [350,400)")
	}
	if p.freeDuring(0, 300, 350) {
		t.Error("truncation must keep [300,350) busy")
	}
	p.truncateOwner(0, 2, 300)
	if !p.freeDuring(0, 0, units.Forever) {
		t.Error("truncating at start should remove the interval")
	}
}

func TestShiftOwner(t *testing.T) {
	p := newProfile(1)
	p.insert(0, interval{start: 100, end: 200, owner: 7})
	p.shiftOwner(0, 7, 500)
	if p.freeDuring(0, 500, 600) {
		t.Error("shifted interval should occupy [500,600)")
	}
	if !p.freeDuring(0, 100, 200) {
		t.Error("original interval should be vacated")
	}
}

func TestGC(t *testing.T) {
	p := newProfile(1)
	p.insert(0, interval{start: 0, end: 100, owner: 1})
	p.insert(0, interval{start: 100, end: 300, owner: 2})
	p.gc(100)
	if len(p.nodes[0]) != 1 || p.nodes[0][0].owner != 2 {
		t.Errorf("gc result: %+v", p.nodes[0])
	}
}

func TestCandidateTimes(t *testing.T) {
	p := newProfile(2)
	p.insert(0, interval{start: 100, end: 200, owner: 1})
	p.insert(1, interval{start: 150, end: 250, owner: 2})
	p.insert(1, interval{start: 0, end: 50, owner: 3})
	got := p.appendCandidateTimes(nil, 60)
	want := []units.Time{60, 200, 250}
	if len(got) != len(want) {
		t.Fatalf("candidateTimes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidateTimes = %v, want %v", got, want)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	p := newProfile(1)
	p.insert(0, interval{start: 100, end: 200, owner: 1})
	p.insert(0, interval{start: 150, end: 250, owner: DowntimeOwner}) // outages may overlap
	if err := p.validate(); err != nil {
		t.Errorf("downtime overlap should be legal: %v", err)
	}
	p.insert(0, interval{start: 150, end: 250, owner: 2})
	if err := p.validate(); err == nil {
		t.Error("overlapping job intervals must fail validation")
	}
}

func TestFreeDuringConsistentWithBusyUntilProperty(t *testing.T) {
	f := func(starts []uint16, at uint16) bool {
		p := newProfile(1)
		for i, s := range starts {
			start := units.Time(s)
			p.insert(0, interval{start: start, end: start.Add(100), owner: i + 1})
		}
		probe := units.Time(at)
		free := p.freeDuring(0, probe, probe+1)
		busyUntil := p.busyUntil(0, probe)
		// freeDuring at an instant must agree with busyUntil.
		return free == (busyUntil == probe)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
