package sched

import (
	"testing"

	"probqos/internal/failure"
	"probqos/internal/predict"
	"probqos/internal/units"
)

// benchScheduler builds a 128-node scheduler loaded with a deep backlog of
// reservations, the worst case for candidate searches.
func benchScheduler(b testing.TB, backlog int) *Scheduler {
	b.Helper()
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 2}, failure.FilterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := predict.NewTrace(tr, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	s := New(128, p, WithQuoteSlack(2*units.Minute))
	for job := 1; job <= backlog; job++ {
		size := 1 + (job*7)%32
		dur := units.Duration(600 + (job*97)%7200)
		c, ok := s.EarliestCandidate(0, size, dur)
		if !ok {
			b.Fatal("no candidate")
		}
		if _, err := s.Reserve(job, c, dur); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkEarliestCandidateBacklogged measures the scheduling decision a
// new arrival triggers against a 300-reservation profile.
func BenchmarkEarliestCandidateBacklogged(b *testing.B) {
	s := benchScheduler(b, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.EarliestCandidate(0, 16, 3600); !ok {
			b.Fatal("no candidate")
		}
	}
}

// BenchmarkReserveRelease measures the reservation bookkeeping cycle.
func BenchmarkReserveRelease(b *testing.B) {
	s := benchScheduler(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, ok := s.EarliestCandidate(0, 8, 1800)
		if !ok {
			b.Fatal("no candidate")
		}
		if _, err := s.Reserve(1000000+i, c, 1800); err != nil {
			b.Fatal(err)
		}
		s.Release(1000000 + i)
	}
}
