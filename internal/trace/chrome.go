package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: the retained spans rendered in the JSON
// object format chrome://tracing and Perfetto load directly. Each span
// becomes one complete ("ph":"X") event with microsecond timestamps
// relative to the tracer's epoch; the trace ID rides along as an event
// argument and picks the thread lane, so concurrent requests render as
// parallel tracks.

// chromeEvent is one trace_event entry on the wire.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds since epoch
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// laneCount bounds the number of Chrome thread lanes traces are spread
// over.
const laneCount = 32

// Export writes the retained spans as Chrome trace_event JSON. A
// non-empty traceID exports only that trace's spans.
func (t *Tracer) Export(w io.Writer, traceID string) error {
	if t == nil {
		return fmt.Errorf("trace: tracing is disabled")
	}
	spans := t.Snapshot()
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		if traceID != "" && sp.TraceID != traceID {
			continue
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  "qosd",
			Ph:   "X",
			TS:   float64(sp.Start.Sub(t.epoch).Nanoseconds()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  1 + int(hashID(sp.TraceID)%laneCount),
			Args: map[string]string{"trace": sp.TraceID},
		}
		for k, v := range sp.Args {
			ev.Args[k] = v
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("trace: export: %w", err)
	}
	return nil
}
