package trace

import (
	"strconv"
	"strings"
)

// ServerTiming renders spans as an HTTP Server-Timing header value
// (RFC 9211-style `name;dur=millis` entries), aggregating durations by
// span name in first-seen order. qosctl -v prints it so a client sees
// where its request's time went without fetching the full trace.
func ServerTiming(spans []Span) string {
	if len(spans) == 0 {
		return ""
	}
	names := make([]string, 0, len(spans))
	total := make(map[string]float64, len(spans))
	for _, sp := range spans {
		if _, seen := total[sp.Name]; !seen {
			names = append(names, sp.Name)
		}
		total[sp.Name] += float64(sp.Dur.Nanoseconds()) / 1e6
	}
	var sb strings.Builder
	for i, name := range names {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(name)
		sb.WriteString(";dur=")
		sb.WriteString(strconv.FormatFloat(total[name], 'f', 3, 64))
	}
	return sb.String()
}
