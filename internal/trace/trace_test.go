package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestScopeRecordsSpans(t *testing.T) {
	tr := New(64)
	sc := tr.StartScope("abc123")
	h := sc.Start("http.quote")
	inner := sc.Start("wal.append")
	inner.Annotate("bytes", "17")
	inner.End()
	h.End()
	sc.Flush()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		if sp.TraceID != "abc123" {
			t.Errorf("span %q has trace %q", sp.Name, sp.TraceID)
		}
		byName[sp.Name] = sp
	}
	if byName["wal.append"].Args["bytes"] != "17" {
		t.Errorf("annotation lost: %+v", byName["wal.append"])
	}
	if byName["http.quote"].Dur < byName["wal.append"].Dur {
		t.Errorf("outer span shorter than nested span: %+v", byName)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	sc := tr.StartScope("x")
	if sc != nil {
		t.Fatalf("nil tracer handed out a scope: %v", sc)
	}
	// Every method must be a no-op on the nil scope, and the disabled path
	// must not allocate: that is the quote fast path's overhead budget.
	allocs := testing.AllocsPerRun(100, func() {
		h := sc.Start("op")
		h.Annotate("k", "v")
		h.End()
		_ = sc.Spans()
		_ = sc.TraceID()
		sc.Flush()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f times per op, want 0", allocs)
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot: %v", got)
	}
	if err := tr.Export(&bytes.Buffer{}, ""); err == nil {
		t.Fatal("nil tracer export did not error")
	}
}

func TestRingWrapsAndCountsDrops(t *testing.T) {
	tr := New(numShards) // one span per shard
	for i := 0; i < 100; i++ {
		sc := tr.StartScope(NewTraceID())
		sc.Start("op").End()
		sc.Flush()
	}
	if n := len(tr.Snapshot()); n > numShards {
		t.Fatalf("ring retained %d spans, capacity %d", n, numShards)
	}
	if tr.Dropped() == 0 {
		t.Fatal("overwriting flushes reported no drops")
	}
}

func TestTraceIDsAreUniqueAndWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 || strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("malformed trace id %q", id)
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestConcurrentFlushes(t *testing.T) {
	tr := New(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sc := tr.StartScope(NewTraceID())
				sc.Start("op").End()
				sc.Flush()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Snapshot()); n != 400 {
		t.Fatalf("retained %d spans, want 400", n)
	}
}

func TestChromeExport(t *testing.T) {
	tr := New(64)
	keep := NewTraceID()
	sc := tr.StartScope(keep)
	sc.Start("quote").End()
	h := sc.Start("admit")
	h.Annotate("job", "7")
	h.End()
	sc.Flush()
	other := tr.StartScope(NewTraceID())
	other.Start("advance").End()
	other.Flush()

	var buf bytes.Buffer
	if err := tr.Export(&buf, ""); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TID < 1 || ev.TS < 0 {
			t.Errorf("malformed event %+v", ev)
		}
		if ev.Args["trace"] == "" {
			t.Errorf("event %q lacks its trace argument", ev.Name)
		}
	}

	// Filtered export returns only the sampled trace's spans.
	buf.Reset()
	if err := tr.Export(&buf, keep); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("filtered export has %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Args["trace"] != keep {
			t.Errorf("filtered export leaked trace %q", ev.Args["trace"])
		}
	}
	if doc.TraceEvents[1].Args["job"] != "7" {
		t.Errorf("annotation lost in export: %+v", doc.TraceEvents[1])
	}
}

func TestSnapshotSortedByStart(t *testing.T) {
	tr := New(64)
	for i := 0; i < 5; i++ {
		sc := tr.StartScope(NewTraceID())
		sc.Start("op").End()
		sc.Flush()
		time.Sleep(time.Millisecond)
	}
	spans := tr.Snapshot()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}
}
