// Package trace is qosd's request-scoped tracing layer and live QoS
// promise-conformance ledger. A Tracer records named wall-clock spans —
// HTTP handling, session-book operations, WAL appends, snapshots, engine
// advances — attributed to a trace ID that travels with the request (the
// X-Qos-Trace header), into sharded ring buffers exportable as Chrome
// trace_event JSON. The Ledger (ledger.go) tracks every admitted promise
// from quote to terminal outcome on the *virtual* clock, so it is fully
// deterministic and safe to carry through WAL replay.
//
// Like sim.Probe, the whole layer is strictly opt-in: a nil *Tracer hands
// out nil *Scopes, every method is nil-receiver safe, and the disabled
// path never reads the wall clock or allocates.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed timed operation attributed to a trace.
type Span struct {
	TraceID string
	Name    string
	Start   time.Time
	Dur     time.Duration
	Args    map[string]string
}

// numShards spreads flushing scopes over independent locks so concurrent
// request goroutines do not serialize on one ring.
const numShards = 8

// defaultCapacity is the total span capacity when New is given none.
const defaultCapacity = 8192

// Tracer retains the most recent spans in per-shard ring buffers. All
// methods are safe for concurrent use; a nil *Tracer is a valid disabled
// tracer.
type Tracer struct {
	epoch   time.Time
	perRing int
	shards  [numShards]ring
	dropped atomic.Uint64
}

type ring struct {
	mu   sync.Mutex
	buf  []Span
	next int
}

// New returns a tracer retaining roughly the given number of most recent
// spans (0 means a default of 8192).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	per := (capacity + numShards - 1) / numShards
	//qoslint:allow detwallclock tracing epoch; observability only, never feeds replayed state
	return &Tracer{epoch: time.Now(), perRing: per}
}

// Enabled reports whether spans are being recorded. A nil tracer is
// disabled.
func (t *Tracer) Enabled() bool { return t != nil }

// Epoch is the wall instant Chrome-export timestamps are relative to.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Dropped counts spans overwritten before export because a ring wrapped.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// NewTraceID mints a 16-hex-digit random trace ID. IDs are wall-random by
// design and must never enter replayed state; they exist only to correlate
// spans across client retries and server logs.
func NewTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// hashID is FNV-1a over the trace ID, inlined to keep the hot path
// dependency-free.
func hashID(traceID string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(traceID); i++ {
		h ^= uint32(traceID[i])
		h *= 16777619
	}
	return h
}

// shardFor picks the ring all spans of one trace land in.
func shardFor(traceID string) int { return int(hashID(traceID) % numShards) }

// StartScope opens a per-request span collector for the given trace ID.
// On a nil (disabled) tracer it returns a nil scope whose methods are all
// no-ops, so call sites need no enabled-checks of their own.
//
// A Scope is NOT safe for concurrent use: qosd hands it from the handler
// goroutine to the state-machine goroutine and back through channel
// operations, which order all accesses.
func (t *Tracer) StartScope(traceID string) *Scope {
	if t == nil {
		return nil
	}
	return &Scope{t: t, traceID: traceID}
}

// Scope accumulates the spans of one request before they are flushed into
// the tracer's rings.
type Scope struct {
	t       *Tracer
	traceID string
	spans   []Span
}

// TraceID returns the scope's trace ID ("" on a nil scope).
func (sc *Scope) TraceID() string {
	if sc == nil {
		return ""
	}
	return sc.traceID
}

// SpanHandle refers to one in-flight span of a scope. The zero handle
// (from a nil scope) is inert.
type SpanHandle struct {
	sc  *Scope
	idx int
}

// Start opens a span. End closes it; an unclosed span exports with zero
// duration rather than being lost.
func (sc *Scope) Start(name string) SpanHandle {
	if sc == nil {
		return SpanHandle{}
	}
	//qoslint:allow detwallclock span timing; observability only, never feeds replayed state
	sc.spans = append(sc.spans, Span{TraceID: sc.traceID, Name: name, Start: time.Now()})
	return SpanHandle{sc: sc, idx: len(sc.spans) - 1}
}

// End closes the span.
func (h SpanHandle) End() {
	if h.sc == nil {
		return
	}
	sp := &h.sc.spans[h.idx]
	//qoslint:allow detwallclock span timing; observability only, never feeds replayed state
	sp.Dur = time.Since(sp.Start)
}

// Annotate attaches one key=value argument to the span, shown in the
// Chrome trace viewer's detail pane.
func (h SpanHandle) Annotate(key, value string) {
	if h.sc == nil {
		return
	}
	sp := &h.sc.spans[h.idx]
	if sp.Args == nil {
		sp.Args = make(map[string]string, 2)
	}
	sp.Args[key] = value
}

// Spans returns the spans recorded so far, oldest first. The slice shares
// the scope's backing array; callers must not mutate it.
func (sc *Scope) Spans() []Span {
	if sc == nil {
		return nil
	}
	return sc.spans
}

// Flush commits the scope's spans into the tracer's ring. Call once, after
// the request finishes; the scope must not be reused.
func (sc *Scope) Flush() {
	if sc == nil || len(sc.spans) == 0 {
		return
	}
	r := &sc.t.shards[shardFor(sc.traceID)]
	r.mu.Lock()
	overwritten := 0
	for _, sp := range sc.spans {
		if len(r.buf) < sc.t.perRing {
			r.buf = append(r.buf, sp)
			continue
		}
		if r.next >= len(r.buf) {
			r.next = 0
		}
		r.buf[r.next] = sp
		r.next++
		overwritten++
	}
	r.mu.Unlock()
	if overwritten > 0 {
		sc.t.dropped.Add(uint64(overwritten))
	}
}

// Snapshot copies every retained span, sorted by start time.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.shards {
		r := &t.shards[i]
		r.mu.Lock()
		out = append(out, r.buf...)
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
