package trace

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"probqos/internal/units"
)

// settleAll marks every open promise terminal with the given outcomes by
// job ID (absent IDs stay open).
func settleAll(l *Ledger, now units.Time, kept map[int]bool) {
	l.Settle(now, func(jobID int) (bool, bool) {
		k, terminal := kept[jobID]
		return k, terminal
	})
}

func TestLedgerLifecycle(t *testing.T) {
	l := NewLedger(10)
	l.Admit(1, "q-1", 0.95, 100, 10)
	l.Admit(2, "q-2", 0.72, 200, 20)
	l.Admit(3, "q-3", 0.55, 300, 30)

	st := l.Stats()
	if st.Promises != 3 || st.Open != 3 || st.Settled != 0 {
		t.Fatalf("after admits: %+v", st)
	}

	settleAll(l, 150, map[int]bool{1: true, 2: false})
	st = l.Stats()
	if st.Settled != 2 || st.Kept != 1 || st.Broken != 1 || st.Open != 1 {
		t.Fatalf("after settle: %+v", st)
	}
	if st.KeepingRate != 0.5 {
		t.Fatalf("keeping rate %v, want 0.5", st.KeepingRate)
	}
	// Brier by hand: ((0.95-1)^2 + (0.72-0)^2) / 2.
	want := (0.05*0.05 + 0.72*0.72) / 2
	if math.Abs(st.Brier-want) > 1e-12 {
		t.Fatalf("brier %v, want %v", st.Brier, want)
	}

	p, ok := l.Lookup(2)
	if !ok || p.Outcome != OutcomeBroken || p.SettledAt != 150 {
		t.Fatalf("lookup(2): %+v ok=%v", p, ok)
	}
	if p, _ := l.Lookup(3); p.Outcome != OutcomePending {
		t.Fatalf("job 3 should still be pending: %+v", p)
	}
}

func TestLedgerBinsMatchCalibrationBucketing(t *testing.T) {
	l := NewLedger(10)
	// 0.95 -> bin 9, 0.90 -> bin 9, 1.0 -> closed final bin 9, 0.05 -> bin 0.
	l.Admit(1, "", 0.95, 100, 0)
	l.Admit(2, "", 0.90, 100, 0)
	l.Admit(3, "", 1.0, 100, 0)
	l.Admit(4, "", 0.05, 100, 0)
	settleAll(l, 100, map[int]bool{1: true, 2: false, 3: true, 4: false})

	st := l.Stats()
	top := st.Bins[9]
	if top.Settled != 3 {
		t.Fatalf("top bin holds %d, want 3 (1.0 must land in the closed final bin): %+v", top.Settled, top)
	}
	if math.Abs(top.PromisedMean-(0.95+0.90+1.0)/3) > 1e-12 {
		t.Fatalf("top bin promised mean %v", top.PromisedMean)
	}
	if math.Abs(top.Observed-2.0/3.0) > 1e-12 {
		t.Fatalf("top bin observed %v, want 2/3", top.Observed)
	}
	if st.Bins[0].Settled != 1 || st.Bins[0].Observed != 0 {
		t.Fatalf("bottom bin %+v", st.Bins[0])
	}
}

func TestLedgerDuplicateAdmitIgnored(t *testing.T) {
	l := NewLedger(10)
	l.Admit(1, "q-1", 0.9, 100, 0)
	l.Admit(1, "q-99", 0.1, 999, 5)
	if st := l.Stats(); st.Promises != 1 {
		t.Fatalf("duplicate admit created a row: %+v", st)
	}
	if p, _ := l.Lookup(1); p.SessionID != "q-1" || p.Promised != 0.9 {
		t.Fatalf("duplicate admit overwrote the original: %+v", p)
	}
}

func TestLedgerSettleIsIdempotent(t *testing.T) {
	l := NewLedger(10)
	l.Admit(1, "", 0.8, 100, 0)
	settleAll(l, 50, map[int]bool{1: true})
	// A second sweep sees no open entries; counters must not move.
	settleAll(l, 60, map[int]bool{1: false})
	st := l.Stats()
	if st.Settled != 1 || st.Kept != 1 || st.Broken != 0 {
		t.Fatalf("resettling moved counters: %+v", st)
	}
	if p, _ := l.Lookup(1); p.SettledAt != 50 {
		t.Fatalf("resettling moved the settle instant: %+v", p)
	}
}

func TestLedgerExportImportRoundTrip(t *testing.T) {
	l := NewLedger(10)
	l.Admit(1, "q-1", 0.95, 100, 10)
	l.Admit(2, "q-2", 0.72, 200, 20)
	l.Admit(3, "q-3", 0.55, 300, 30)
	settleAll(l, 150, map[int]bool{1: true, 2: false})

	// Round-trip through JSON, as a qosd snapshot would.
	data, err := json.Marshal(l.Export())
	if err != nil {
		t.Fatal(err)
	}
	var st LedgerState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	restored := NewLedger(0)
	if err := restored.Import(st); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(restored.Export(), l.Export()) {
		t.Fatalf("export mismatch:\n got %+v\nwant %+v", restored.Export(), l.Export())
	}
	if !reflect.DeepEqual(restored.Stats(), l.Stats()) {
		t.Fatalf("stats mismatch:\n got %+v\nwant %+v", restored.Stats(), l.Stats())
	}

	// The restored ledger must keep settling identically.
	settleAll(l, 400, map[int]bool{3: false})
	settleAll(restored, 400, map[int]bool{3: false})
	if !reflect.DeepEqual(restored.Export(), l.Export()) {
		t.Fatalf("post-import settlement diverged")
	}
}

func TestLedgerImportRejectsBadState(t *testing.T) {
	l := NewLedger(10)
	if err := l.Import(LedgerState{Bins: 10, Promises: []Promise{
		{JobID: 1, Outcome: OutcomeKept}, {JobID: 1, Outcome: OutcomeKept},
	}}); err == nil {
		t.Fatal("import accepted a duplicate job ID")
	}
	if err := l.Import(LedgerState{Bins: 10, Promises: []Promise{
		{JobID: 1, Outcome: "mangled"},
	}}); err == nil {
		t.Fatal("import accepted an unknown outcome")
	}
}

func TestLedgerEntriesTail(t *testing.T) {
	l := NewLedger(10)
	for i := 1; i <= 5; i++ {
		l.Admit(i, "", 0.5, 100, 0)
	}
	tail := l.Entries(2)
	if len(tail) != 2 || tail[0].JobID != 4 || tail[1].JobID != 5 {
		t.Fatalf("tail(2): %+v", tail)
	}
	if all := l.Entries(0); len(all) != 5 {
		t.Fatalf("tail(0) returned %d rows, want all 5", len(all))
	}
}

func TestLedgerVersionTracksChanges(t *testing.T) {
	l := NewLedger(10)
	v0 := l.Version()
	l.Admit(1, "", 0.5, 100, 0)
	if l.Version() == v0 {
		t.Fatal("admit did not bump the version")
	}
	v1 := l.Version()
	settleAll(l, 50, map[int]bool{1: true})
	if l.Version() == v1 {
		t.Fatal("settlement did not bump the version")
	}
	v2 := l.Version()
	settleAll(l, 60, nil) // nothing to settle
	if l.Version() != v2 {
		t.Fatal("no-op sweep bumped the version")
	}
}
