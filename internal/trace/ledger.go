package trace

import (
	"fmt"

	"probqos/internal/stats"
	"probqos/internal/units"
)

// The promise ledger: the runtime answer to "does qosd keep the promises
// it quotes?". Every successful admit files the quoted success
// probability and deadline; every clock advance settles the promises the
// engine has driven to a terminal state. From the settled rows the ledger
// maintains streaming conformance statistics — promise-keeping rate,
// Brier score, and reliability-diagram buckets on the same stats.BinIndex
// rule as the offline metrics.Calibration diagram — exposed on /metrics
// and /qos/conformance.
//
// Unlike the span tracer, the ledger lives entirely on the virtual clock:
// it is deterministic state, owned by the service's machine, carried
// through WAL replay and snapshots so that a recovered daemon reports
// exactly the conformance record it would have had without the crash.

// Outcome is the terminal disposition of one promise.
type Outcome string

// Promise outcomes. A promise is pending until its job completes on time
// (kept) or its deadline passes unmet (broken).
const (
	OutcomePending Outcome = "pending"
	OutcomeKept    Outcome = "kept"
	OutcomeBroken  Outcome = "broken"
)

// Promise is one ledger row: a quoted probability bound to a deadline and,
// eventually, an outcome. Times are virtual.
type Promise struct {
	JobID      int        `json:"job_id"`
	SessionID  string     `json:"session_id,omitempty"`
	Promised   float64    `json:"promised"`
	Deadline   units.Time `json:"deadline"`
	AdmittedAt units.Time `json:"admitted_at"`
	Outcome    Outcome    `json:"outcome"`
	SettledAt  units.Time `json:"settled_at,omitempty"`
}

// ConformanceBin is one reliability-diagram bucket of settled promises.
type ConformanceBin struct {
	// Lo and Hi bound the promised-probability bin [Lo, Hi).
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Settled is the number of settled promises in the bin.
	Settled int `json:"settled"`
	// PromisedMean is the mean quoted probability of those promises.
	PromisedMean float64 `json:"promised_mean"`
	// Observed is the fraction of those promises that were kept. Honesty
	// is Observed >= PromisedMean in every populated bin.
	Observed float64 `json:"observed"`
}

// ConformanceStats is the ledger's streaming summary.
type ConformanceStats struct {
	Promises int `json:"promises"`
	Open     int `json:"open"`
	Settled  int `json:"settled"`
	Kept     int `json:"kept"`
	Broken   int `json:"broken"`
	// KeepingRate is kept/settled (0 before the first settlement).
	KeepingRate float64 `json:"keeping_rate"`
	// Brier is the mean squared error of the quoted probabilities against
	// the 0/1 outcomes: lower is better-calibrated, 0.25 is coin-flip bad.
	Brier float64          `json:"brier_score"`
	Bins  []ConformanceBin `json:"bins"`
}

// Ledger tracks promises from admission to settlement. It is not safe for
// concurrent use; qosd drives it from the state-machine goroutine.
type Ledger struct {
	bins    int
	entries []Promise
	index   map[int]int // job ID -> entries index
	open    []int       // entries indices of pending promises, admit order

	kept, broken int
	brierSum     float64
	binSettled   []int
	binKept      []int
	binPromised  []float64

	// version increments on every admit or settlement, so callers can
	// cheaply skip republishing unchanged stats.
	version uint64
}

// DefaultBins matches the offline calibration diagram's usual resolution.
const DefaultBins = 10

// NewLedger returns an empty ledger with the given number of
// reliability-diagram bins (0 means DefaultBins).
func NewLedger(bins int) *Ledger {
	if bins <= 0 {
		bins = DefaultBins
	}
	return &Ledger{
		bins:        bins,
		index:       make(map[int]int),
		binSettled:  make([]int, bins),
		binKept:     make([]int, bins),
		binPromised: make([]float64, bins),
	}
}

// Version increments on every state change; equal versions mean equal
// stats.
func (l *Ledger) Version() uint64 { return l.version }

// Admit files a new promise. Re-admitting a job ID is ignored: the engine
// rejects duplicate admits, so a second call is a replay artifact, not a
// new promise.
func (l *Ledger) Admit(jobID int, sessionID string, promised float64, deadline, now units.Time) {
	if _, dup := l.index[jobID]; dup {
		return
	}
	l.index[jobID] = len(l.entries)
	l.entries = append(l.entries, Promise{
		JobID:      jobID,
		SessionID:  sessionID,
		Promised:   promised,
		Deadline:   deadline,
		AdmittedAt: now,
		Outcome:    OutcomePending,
	})
	l.open = append(l.open, len(l.entries)-1)
	l.version++
}

// Settle scans the open promises in admit order and asks judge for each
// job's disposition; terminal ones are settled at the given virtual
// instant. The judge runs against the engine, which already knows every
// outcome — the ledger only records them.
func (l *Ledger) Settle(now units.Time, judge func(jobID int) (kept, terminal bool)) {
	still := l.open[:0]
	for _, idx := range l.open {
		kept, terminal := judge(l.entries[idx].JobID)
		if !terminal {
			still = append(still, idx)
			continue
		}
		l.settle(idx, kept, now)
	}
	l.open = still
}

// settle finalizes one pending entry and folds it into the streaming
// statistics.
func (l *Ledger) settle(idx int, kept bool, now units.Time) {
	e := &l.entries[idx]
	e.SettledAt = now
	outcome := 0.0
	if kept {
		e.Outcome = OutcomeKept
		l.kept++
		outcome = 1.0
	} else {
		e.Outcome = OutcomeBroken
		l.broken++
	}
	diff := e.Promised - outcome
	l.brierSum += diff * diff
	b := stats.BinIndex(e.Promised, l.bins)
	l.binSettled[b]++
	if kept {
		l.binKept[b]++
	}
	l.binPromised[b] += e.Promised
	l.version++
}

// Stats summarizes the ledger.
func (l *Ledger) Stats() ConformanceStats {
	settled := l.kept + l.broken
	st := ConformanceStats{
		Promises: len(l.entries),
		Open:     len(l.open),
		Settled:  settled,
		Kept:     l.kept,
		Broken:   l.broken,
		Bins:     make([]ConformanceBin, l.bins),
	}
	if settled > 0 {
		st.KeepingRate = float64(l.kept) / float64(settled)
		st.Brier = l.brierSum / float64(settled)
	}
	for i := range st.Bins {
		b := &st.Bins[i]
		b.Lo = float64(i) / float64(l.bins)
		b.Hi = float64(i+1) / float64(l.bins)
		b.Settled = l.binSettled[i]
		if n := l.binSettled[i]; n > 0 {
			b.PromisedMean = l.binPromised[i] / float64(n)
			b.Observed = float64(l.binKept[i]) / float64(n)
		}
	}
	return st
}

// Entries returns a copy of the most recent tail promises in admit order
// (tail <= 0 means all).
func (l *Ledger) Entries(tail int) []Promise {
	n := len(l.entries)
	if tail > 0 && tail < n {
		n = tail
	}
	out := make([]Promise, n)
	copy(out, l.entries[len(l.entries)-n:])
	return out
}

// Lookup returns the ledger row for one job.
func (l *Ledger) Lookup(jobID int) (Promise, bool) {
	idx, ok := l.index[jobID]
	if !ok {
		return Promise{}, false
	}
	return l.entries[idx], true
}

// LedgerState is the ledger's persistent form, carried inside qosd
// snapshots. BrierSum is carried verbatim rather than recomputed because
// the live sum accumulates in settlement order, which the rows alone do
// not fully determine; every other statistic is rebuilt from the rows so
// the state cannot go internally inconsistent.
type LedgerState struct {
	Bins     int       `json:"bins"`
	BrierSum float64   `json:"brier_sum"`
	Promises []Promise `json:"promises"`
}

// Export snapshots the ledger.
func (l *Ledger) Export() LedgerState {
	return LedgerState{
		Bins:     l.bins,
		BrierSum: l.brierSum,
		Promises: append([]Promise(nil), l.entries...),
	}
}

// Import replaces the ledger's contents with an exported state.
func (l *Ledger) Import(st LedgerState) error {
	bins := st.Bins
	if bins <= 0 {
		bins = DefaultBins
	}
	fresh := NewLedger(bins)
	for i, p := range st.Promises {
		if _, dup := fresh.index[p.JobID]; dup {
			return fmt.Errorf("trace: ledger state repeats job %d", p.JobID)
		}
		fresh.index[p.JobID] = i
		fresh.entries = append(fresh.entries, p)
		switch p.Outcome {
		case OutcomePending:
			fresh.open = append(fresh.open, i)
		case OutcomeKept:
			fresh.kept++
			fresh.binSettled[stats.BinIndex(p.Promised, bins)]++
			fresh.binKept[stats.BinIndex(p.Promised, bins)]++
			fresh.binPromised[stats.BinIndex(p.Promised, bins)] += p.Promised
		case OutcomeBroken:
			fresh.broken++
			fresh.binSettled[stats.BinIndex(p.Promised, bins)]++
			fresh.binPromised[stats.BinIndex(p.Promised, bins)] += p.Promised
		default:
			return fmt.Errorf("trace: ledger state job %d has unknown outcome %q", p.JobID, p.Outcome)
		}
	}
	fresh.brierSum = st.BrierSum
	fresh.version = l.version + 1
	*l = *fresh
	return nil
}
