package failure

import (
	"fmt"
	"io"
	"sort"

	"probqos/internal/units"
)

// RawLogStats summarizes an unfiltered RAS log: the view an operator has
// before filtering, and the numbers that justify the filtering pipeline
// (critical events vastly outnumber root causes).
type RawLogStats struct {
	Events      int
	BySeverity  map[Severity]int
	BySubsystem map[Subsystem]int
	Critical    int // FATAL + FAILURE
	Span        units.Duration
}

// AnalyzeRawLog computes summary statistics of a raw log.
func AnalyzeRawLog(events []RawEvent) RawLogStats {
	s := RawLogStats{
		Events:      len(events),
		BySeverity:  make(map[Severity]int),
		BySubsystem: make(map[Subsystem]int),
	}
	if len(events) == 0 {
		return s
	}
	first, last := events[0].Time, events[0].Time
	for _, e := range events {
		s.BySeverity[e.Severity]++
		s.BySubsystem[e.Subsystem]++
		if e.Severity >= Fatal {
			s.Critical++
		}
		first = first.Min(e.Time)
		last = last.Max(e.Time)
	}
	s.Span = last.Sub(first)
	return s
}

// WriteTo renders the statistics as a human-readable report.
func (s RawLogStats) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := write("events:    %d over %.1f days (%d critical)\n",
		s.Events, s.Span.Hours()/24, s.Critical); err != nil {
		return total, err
	}
	severities := make([]Severity, 0, len(s.BySeverity))
	for sev := range s.BySeverity {
		severities = append(severities, sev)
	}
	sort.Slice(severities, func(i, j int) bool { return severities[i] < severities[j] })
	for _, sev := range severities {
		if err := write("  %-8s %d\n", sev, s.BySeverity[sev]); err != nil {
			return total, err
		}
	}
	subsystems := make([]Subsystem, 0, len(s.BySubsystem))
	for sub := range s.BySubsystem {
		subsystems = append(subsystems, sub)
	}
	sort.Slice(subsystems, func(i, j int) bool { return subsystems[i] < subsystems[j] })
	for _, sub := range subsystems {
		if err := write("  %-8s %d\n", sub, s.BySubsystem[sub]); err != nil {
			return total, err
		}
	}
	return total, nil
}

// Slice returns a new trace containing only the failures with Time in
// [from, to), re-based so the first instant of the window is time zero.
// It supports simulating against a sub-period of a longer trace.
func (t *Trace) Slice(from, to units.Time) (*Trace, error) {
	var events []Event
	for _, e := range t.events {
		if e.Time >= from && e.Time < to {
			e.Time -= from
			events = append(events, e)
		}
	}
	return NewTrace(t.nodes, events)
}
