package failure

import (
	"math"
	"testing"

	"probqos/internal/units"
)

func TestGenerateTraceCalibration(t *testing.T) {
	tr, err := GenerateTrace(RawConfig{}, FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	t.Logf("trace: failures=%d span=%.1fd clusterMTBF=%.2fh nodeMTBF=%.1fw perDay=%.2f maxPerNode=%d",
		s.Failures, s.Span.Hours()/24, s.ClusterMTBF.Hours(), s.NodeMTBF.Hours()/(24*7), s.PerDay, s.MaxPerNode)

	// Paper §4.3: 1,021 failures over a year on 128 machines, ~2.8/day,
	// cluster MTBF 8.5 h, average node MTBF ~6.5 weeks.
	if math.Abs(float64(s.Failures)-1021) > 110 {
		t.Errorf("failures = %d, want ~1021", s.Failures)
	}
	if math.Abs(s.ClusterMTBF.Hours()-8.5) > 1.5 {
		t.Errorf("cluster MTBF = %.2fh, want ~8.5h", s.ClusterMTBF.Hours())
	}
	if math.Abs(s.PerDay-2.8) > 0.5 {
		t.Errorf("failures/day = %.2f, want ~2.8", s.PerDay)
	}
	nodeMTBFWeeks := s.NodeMTBF.Hours() / (24 * 7)
	if math.Abs(nodeMTBFWeeks-6.5) > 1.3 {
		t.Errorf("node MTBF = %.1f weeks, want ~6.5", nodeMTBFWeeks)
	}
}

func TestGenerateTraceBurstiness(t *testing.T) {
	tr, err := GenerateTrace(RawConfig{}, FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	var gaps []float64
	for i := 1; i < len(events); i++ {
		gaps = append(gaps, events[i].Time.Sub(events[i-1].Time).Seconds())
	}
	var mean, sq float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(sq/float64(len(gaps)-1)) / mean
	// A Poisson process has CV=1; the paper's trace is bursty, so the
	// coefficient of variation must be clearly above 1.
	if cv < 1.2 {
		t.Errorf("inter-failure CV = %.2f, want > 1.2 (bursty)", cv)
	}
	t.Logf("inter-failure gap CV = %.2f", cv)
}

func TestGenerateTraceNodeSkew(t *testing.T) {
	tr, err := GenerateTrace(RawConfig{}, FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, tr.Nodes())
	for _, e := range tr.Events() {
		counts[e.Node]++
	}
	max, nonzero := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonzero++
		}
	}
	avg := float64(tr.Len()) / float64(tr.Nodes())
	if float64(max) < 2.5*avg {
		t.Errorf("max per-node failures %d vs avg %.1f: per-node skew too weak", max, avg)
	}
	if nonzero < tr.Nodes()/2 {
		t.Errorf("only %d/%d nodes ever fail; skew too strong", nonzero, tr.Nodes())
	}
}

func TestGenerateRawLogHasPrecursorsAndNoise(t *testing.T) {
	raw := GenerateRawLog(RawConfig{Episodes: 200, Span: 30 * units.Day})
	bySeverity := make(map[Severity]int)
	for _, e := range raw {
		bySeverity[e.Severity]++
	}
	if bySeverity[Info] == 0 || bySeverity[Warning] == 0 || bySeverity[Error] == 0 {
		t.Errorf("raw log missing benign/precursor severities: %v", bySeverity)
	}
	critical := bySeverity[Fatal] + bySeverity[Failure]
	if critical < 200 {
		t.Errorf("raw log has %d critical events, want >= 200 (episodes + duplicates)", critical)
	}
	for i := 1; i < len(raw); i++ {
		if raw[i].Time < raw[i-1].Time {
			t.Fatal("raw log not sorted by time")
		}
	}
}

func TestFilterCoalescesRootCauses(t *testing.T) {
	// Three critical events sharing one root cause (same subsystem, within
	// the window) plus one independent later failure.
	raw := []RawEvent{
		{Time: 100, Node: 1, Severity: Fatal, Subsystem: SubsystemDisk},
		{Time: 130, Node: 1, Severity: Fatal, Subsystem: SubsystemDisk},   // repeat
		{Time: 150, Node: 7, Severity: Failure, Subsystem: SubsystemDisk}, // sympathetic
		{Time: 120, Node: 3, Severity: Warning, Subsystem: SubsystemDisk}, // not critical
		{Time: 100000, Node: 2, Severity: Fatal, Subsystem: SubsystemDisk},
		{Time: 140, Node: 4, Severity: Fatal, Subsystem: SubsystemCPU}, // different subsystem
	}
	tr, err := Filter(raw, 8, FilterConfig{Window: 300})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("filtered %d failures, want 3: %+v", tr.Len(), tr.Events())
	}
	events := tr.Events()
	if events[0].Node != 1 || events[0].Time != 100 {
		t.Errorf("first kept failure = %+v, want node 1 at t=100", events[0])
	}
	if events[1].Node != 4 {
		t.Errorf("second kept failure = %+v, want the CPU failure on node 4", events[1])
	}
	if events[2].Time != 100000 {
		t.Errorf("third kept failure = %+v, want the independent one", events[2])
	}
}

func TestFilterDetectabilitiesValidAndDeterministic(t *testing.T) {
	raw := GenerateRawLog(RawConfig{Episodes: 300, Seed: 9})
	a, err := Filter(raw, 128, FilterConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Filter(raw, 128, FilterConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range a.Events() {
		if e.Detectability < 0 || e.Detectability >= 1 {
			t.Fatalf("detectability out of range: %v", e.Detectability)
		}
		if b.At(i) != e {
			t.Fatal("Filter is not deterministic for a fixed seed")
		}
	}
	c, err := Filter(raw, 128, FilterConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0).Detectability == a.At(0).Detectability {
		t.Error("different detectability seeds produced identical assignments")
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	t1, err := GenerateTrace(RawConfig{Seed: 42}, FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := GenerateTrace(RawConfig{Seed: 42}, FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if t1.Len() != t2.Len() {
		t.Fatalf("lengths differ: %d vs %d", t1.Len(), t2.Len())
	}
	for i := 0; i < t1.Len(); i++ {
		if t1.At(i) != t2.At(i) {
			t.Fatalf("event %d differs", i)
		}
	}
}
