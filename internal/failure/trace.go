package failure

import (
	"fmt"
	"sort"

	"probqos/internal/units"
)

// Trace is a filtered failure trace over a fixed-size cluster: the input the
// simulator and the predictor consume. Events are sorted by time; a node may
// fail repeatedly.
type Trace struct {
	events  []Event
	nodes   int
	perNode []nodeIndex
}

// nodeIndex is the per-node query index: one node's failures in ascending
// time order, with times and detectabilities unpacked into flat arrays for
// cache-friendly binary search, plus a min-detectability segment tree that
// answers "first event in [i, j) with detectability <= a" in O(log k).
// The scheduler's node-scoring loop issues that exact query once per free
// node per candidate start, which makes it the hottest read in the system.
type nodeIndex struct {
	pos   []int        // indices into Trace.events
	times []units.Time // times[i] == events[pos[i]].Time (ascending)
	det   []float64    // det[i] == events[pos[i]].Detectability
	tree  []float64    // 1-based min segment tree over det; leaves at [size, size+len)
	size  int          // leaf span: smallest power of two >= len(pos)
}

// detSentinel pads segment-tree leaves past the event count; any valid
// detectability (<= 1) compares below it.
const detSentinel = 2.0

func (ix *nodeIndex) build() {
	n := len(ix.pos)
	if n == 0 {
		return
	}
	size := 1
	for size < n {
		size <<= 1
	}
	tree := make([]float64, 2*size)
	for i := range tree {
		tree[i] = detSentinel
	}
	copy(tree[size:], ix.det)
	for i := size - 1; i >= 1; i-- {
		l, r := tree[2*i], tree[2*i+1]
		if r < l {
			l = r
		}
		tree[i] = l
	}
	ix.tree = tree
	ix.size = size
}

// searchTime returns the first position whose event time is >= t.
func (ix *nodeIndex) searchTime(t units.Time) int {
	lo, hi := 0, len(ix.times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.times[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// firstLE returns the leftmost position in [lo, hi) with detectability <= a,
// or -1. It descends the segment tree, pruning subtrees whose minimum
// already exceeds a.
func (ix *nodeIndex) firstLE(lo, hi int, a float64) int {
	if ix.size == 0 || lo >= hi {
		return -1
	}
	return treeFirstLE(ix.tree, 1, 0, ix.size, lo, hi, a)
}

func treeFirstLE(tree []float64, node, nl, nh, lo, hi int, a float64) int {
	if nl >= hi || nh <= lo || tree[node] > a {
		return -1
	}
	if nh-nl == 1 {
		return nl
	}
	mid := (nl + nh) / 2
	if r := treeFirstLE(tree, 2*node, nl, mid, lo, hi, a); r >= 0 {
		return r
	}
	return treeFirstLE(tree, 2*node+1, mid, nh, lo, hi, a)
}

// NewTrace builds a trace over a cluster of n nodes. Events are copied and
// sorted by time. It returns an error if any event references a node outside
// [0, n) or carries a detectability outside [0, 1].
func NewTrace(nodes int, events []Event) (*Trace, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("failure: trace needs a positive node count, got %d", nodes)
	}
	t := &Trace{
		events:  make([]Event, len(events)),
		nodes:   nodes,
		perNode: make([]nodeIndex, nodes),
	}
	copy(t.events, events)
	sort.SliceStable(t.events, func(i, j int) bool { return t.events[i].Time < t.events[j].Time })
	for i, e := range t.events {
		if e.Node < 0 || e.Node >= nodes {
			return nil, fmt.Errorf("failure: event %d references node %d outside [0,%d)", i, e.Node, nodes)
		}
		if e.Detectability < 0 || e.Detectability > 1 {
			return nil, fmt.Errorf("failure: event %d has detectability %v outside [0,1]", i, e.Detectability)
		}
		ix := &t.perNode[e.Node]
		ix.pos = append(ix.pos, i)
		ix.times = append(ix.times, e.Time)
		ix.det = append(ix.det, e.Detectability)
	}
	for n := range t.perNode {
		t.perNode[n].build()
	}
	return t, nil
}

// Nodes returns the cluster size the trace covers.
func (t *Trace) Nodes() int { return t.nodes }

// Len returns the number of failures in the trace.
func (t *Trace) Len() int { return len(t.events) }

// Events returns a copy of all failures in time order.
func (t *Trace) Events() []Event {
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// At returns the i-th failure in time order.
func (t *Trace) At(i int) Event { return t.events[i] }

// NodeEvents returns the failures of one node in time order.
func (t *Trace) NodeEvents(node int) []Event {
	idx := t.perNode[node].pos
	out := make([]Event, len(idx))
	for i, k := range idx {
		out[i] = t.events[k]
	}
	return out
}

// NextOnNode returns the first failure of node at or after from, if any.
func (t *Trace) NextOnNode(node int, from units.Time) (Event, bool) {
	ix := &t.perNode[node]
	i := ix.searchTime(from)
	if i == len(ix.pos) {
		return Event{}, false
	}
	return t.events[ix.pos[i]], true
}

// ScanNode calls fn for each failure of one node with Time in [from, to), in
// ascending time order, stopping early if fn returns false. It is the
// allocation-free single-node fast path under Scan: one binary search into
// the per-node index, then a linear walk that needs no cursor slice and no
// tournament merge.
func (t *Trace) ScanNode(node int, from, to units.Time, fn func(Event) bool) {
	ix := &t.perNode[node]
	for i := ix.searchTime(from); i < len(ix.times) && ix.times[i] < to; i++ {
		if !fn(t.events[ix.pos[i]]) {
			return
		}
	}
}

// FirstDetectableOnNode returns the earliest failure of one node with Time
// in [from, to) and Detectability <= maxDet. It answers from the per-node
// segment tree in O(log k) without visiting the skipped events — the
// scheduler's node-scoring query, which a linear walk pays for once per
// undetectable event in the window.
func (t *Trace) FirstDetectableOnNode(node int, from, to units.Time, maxDet float64) (Event, bool) {
	i := t.firstDetectablePos(node, from, to, maxDet)
	if i < 0 {
		return Event{}, false
	}
	return t.events[i], true
}

// firstDetectablePos returns the trace index (position in t.events) of the
// earliest failure of one node with Time in [from, to) and Detectability <=
// maxDet, or -1. Because events are stable-sorted by time, trace-index order
// refines time order, so positions compare exactly like (time, insertion)
// pairs — the property the batched queries below lean on.
func (t *Trace) firstDetectablePos(node int, from, to units.Time, maxDet float64) int {
	ix := &t.perNode[node]
	lo := ix.searchTime(from)
	if lo == len(ix.times) || ix.times[lo] >= to {
		return -1 // empty window: the overwhelmingly common case
	}
	if ix.det[lo] <= maxDet {
		return ix.pos[lo] // first event already detectable
	}
	hi := lo + searchTimes(ix.times[lo:], to)
	i := ix.firstLE(lo+1, hi, maxDet)
	if i < 0 {
		return -1
	}
	return ix.pos[i]
}

// FirstDetectableOnNodes returns the earliest failure with Time in [from,
// to) and Detectability <= maxDet across all the given nodes: the batched
// partition query. One pass over the trace index answers every node through
// its segment tree and keeps the minimum trace position, which is exactly
// the event a time-ordered Scan would deliver first (ties at equal times
// break on trace index in both), without the per-event merge walk or its
// cursor allocation.
func (t *Trace) FirstDetectableOnNodes(nodes []int, from, to units.Time, maxDet float64) (Event, bool) {
	best := -1
	for _, n := range nodes {
		if i := t.firstDetectablePos(n, from, to, maxDet); i >= 0 && (best < 0 || i < best) {
			best = i
		}
	}
	if best < 0 {
		return Event{}, false
	}
	return t.events[best], true
}

// AppendPFailBatch appends, for each node in nodes, the detectability of
// its earliest failure with Time in [from, to) and Detectability <= maxDet
// (0 when the node has none) and returns the extended slice. It is the
// scheduler's batched scoring query: all candidate nodes answered in one
// call over the trace index, each through its O(log k) segment-tree
// descent, instead of one FirstDetectableOnNode interface call per node.
func (t *Trace) AppendPFailBatch(dst []float64, nodes []int, from, to units.Time, maxDet float64) []float64 {
	for _, n := range nodes {
		var px float64
		if i := t.firstDetectablePos(n, from, to, maxDet); i >= 0 {
			px = t.events[i].Detectability
		}
		dst = append(dst, px)
	}
	return dst
}

// searchTimes returns the first position in times with value >= t.
func searchTimes(times []units.Time, t units.Time) int {
	lo, hi := 0, len(times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if times[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Scan calls fn for each failure with Time in [from, to) on any of the given
// nodes, in ascending time order, stopping early if fn returns false.
// It runs in O(len(nodes) * log(events) + hits) by merging per-node streams;
// single-node queries take the ScanNode fast path.
func (t *Trace) Scan(nodes []int, from, to units.Time, fn func(Event) bool) {
	if len(nodes) == 1 {
		t.ScanNode(nodes[0], from, to, fn)
		return
	}
	// cursor[i] is the next per-node index not yet yielded for nodes[i].
	cursors := make([]int, len(nodes))
	for i, n := range nodes {
		cursors[i] = t.perNode[n].searchTime(from)
	}
	for {
		best := -1
		var bestEvent Event
		for i, n := range nodes {
			idx := t.perNode[n].pos
			if cursors[i] >= len(idx) {
				continue
			}
			e := t.events[idx[cursors[i]]]
			if e.Time >= to {
				continue
			}
			if best == -1 || e.Time < bestEvent.Time ||
				(e.Time == bestEvent.Time && idx[cursors[i]] < best) {
				best = idx[cursors[i]]
				bestEvent = e
			}
		}
		if best == -1 {
			return
		}
		for i, n := range nodes {
			pos := t.perNode[n].pos
			if c := cursors[i]; c < len(pos) && pos[c] == best {
				cursors[i]++
			}
		}
		if !fn(bestEvent) {
			return
		}
	}
}

// Window returns all failures with Time in [from, to) on the given nodes, in
// time order.
func (t *Trace) Window(nodes []int, from, to units.Time) []Event {
	var out []Event
	t.Scan(nodes, from, to, func(e Event) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Stats summarizes a trace for calibration and reporting.
type Stats struct {
	Failures    int
	Span        units.Duration // last event time - first event time
	ClusterMTBF units.Duration // span / (failures-1), cluster-wide
	NodeMTBF    units.Duration // average per-node MTBF (ClusterMTBF * nodes)
	PerDay      float64
	MaxPerNode  int
}

// Stats computes trace-level summary statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Failures = len(t.events)
	if s.Failures < 2 {
		return s
	}
	s.Span = t.events[len(t.events)-1].Time.Sub(t.events[0].Time)
	s.ClusterMTBF = s.Span / units.Duration(s.Failures-1)
	s.NodeMTBF = s.ClusterMTBF * units.Duration(t.nodes)
	s.PerDay = float64(s.Failures) / (s.Span.Seconds() / units.Day.Seconds())
	for n := range t.perNode {
		if k := len(t.perNode[n].pos); k > s.MaxPerNode {
			s.MaxPerNode = k
		}
	}
	return s
}
