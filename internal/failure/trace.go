package failure

import (
	"fmt"
	"sort"

	"probqos/internal/units"
)

// Trace is a filtered failure trace over a fixed-size cluster: the input the
// simulator and the predictor consume. Events are sorted by time; a node may
// fail repeatedly.
type Trace struct {
	events  []Event
	nodes   int
	perNode [][]int // indices into events, per node, ascending in time
}

// NewTrace builds a trace over a cluster of n nodes. Events are copied and
// sorted by time. It returns an error if any event references a node outside
// [0, n) or carries a detectability outside [0, 1].
func NewTrace(nodes int, events []Event) (*Trace, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("failure: trace needs a positive node count, got %d", nodes)
	}
	t := &Trace{
		events:  make([]Event, len(events)),
		nodes:   nodes,
		perNode: make([][]int, nodes),
	}
	copy(t.events, events)
	sort.SliceStable(t.events, func(i, j int) bool { return t.events[i].Time < t.events[j].Time })
	for i, e := range t.events {
		if e.Node < 0 || e.Node >= nodes {
			return nil, fmt.Errorf("failure: event %d references node %d outside [0,%d)", i, e.Node, nodes)
		}
		if e.Detectability < 0 || e.Detectability > 1 {
			return nil, fmt.Errorf("failure: event %d has detectability %v outside [0,1]", i, e.Detectability)
		}
		t.perNode[e.Node] = append(t.perNode[e.Node], i)
	}
	return t, nil
}

// Nodes returns the cluster size the trace covers.
func (t *Trace) Nodes() int { return t.nodes }

// Len returns the number of failures in the trace.
func (t *Trace) Len() int { return len(t.events) }

// Events returns a copy of all failures in time order.
func (t *Trace) Events() []Event {
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// At returns the i-th failure in time order.
func (t *Trace) At(i int) Event { return t.events[i] }

// NodeEvents returns the failures of one node in time order.
func (t *Trace) NodeEvents(node int) []Event {
	idx := t.perNode[node]
	out := make([]Event, len(idx))
	for i, k := range idx {
		out[i] = t.events[k]
	}
	return out
}

// NextOnNode returns the first failure of node at or after from, if any.
func (t *Trace) NextOnNode(node int, from units.Time) (Event, bool) {
	idx := t.perNode[node]
	i := sort.Search(len(idx), func(i int) bool { return t.events[idx[i]].Time >= from })
	if i == len(idx) {
		return Event{}, false
	}
	return t.events[idx[i]], true
}

// Scan calls fn for each failure with Time in [from, to) on any of the given
// nodes, in ascending time order, stopping early if fn returns false.
// It runs in O(len(nodes) * log(events) + hits) by merging per-node streams.
func (t *Trace) Scan(nodes []int, from, to units.Time, fn func(Event) bool) {
	// cursor[i] is the next per-node index not yet yielded for nodes[i].
	cursors := make([]int, len(nodes))
	for i, n := range nodes {
		idx := t.perNode[n]
		cursors[i] = sort.Search(len(idx), func(k int) bool { return t.events[idx[k]].Time >= from })
	}
	for {
		best := -1
		var bestEvent Event
		for i, n := range nodes {
			idx := t.perNode[n]
			if cursors[i] >= len(idx) {
				continue
			}
			e := t.events[idx[cursors[i]]]
			if e.Time >= to {
				continue
			}
			if best == -1 || e.Time < bestEvent.Time ||
				(e.Time == bestEvent.Time && idx[cursors[i]] < best) {
				best = idx[cursors[i]]
				bestEvent = e
			}
		}
		if best == -1 {
			return
		}
		for i, n := range nodes {
			if c := cursors[i]; c < len(t.perNode[n]) && t.perNode[n][c] == best {
				cursors[i]++
			}
		}
		if !fn(bestEvent) {
			return
		}
	}
}

// Window returns all failures with Time in [from, to) on the given nodes, in
// time order.
func (t *Trace) Window(nodes []int, from, to units.Time) []Event {
	var out []Event
	t.Scan(nodes, from, to, func(e Event) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Stats summarizes a trace for calibration and reporting.
type Stats struct {
	Failures    int
	Span        units.Duration // last event time - first event time
	ClusterMTBF units.Duration // span / (failures-1), cluster-wide
	NodeMTBF    units.Duration // average per-node MTBF (ClusterMTBF * nodes)
	PerDay      float64
	MaxPerNode  int
}

// Stats computes trace-level summary statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Failures = len(t.events)
	if s.Failures < 2 {
		return s
	}
	s.Span = t.events[len(t.events)-1].Time.Sub(t.events[0].Time)
	s.ClusterMTBF = s.Span / units.Duration(s.Failures-1)
	s.NodeMTBF = s.ClusterMTBF * units.Duration(t.nodes)
	s.PerDay = float64(s.Failures) / (s.Span.Seconds() / units.Day.Seconds())
	for _, idx := range t.perNode {
		if len(idx) > s.MaxPerNode {
			s.MaxPerNode = len(idx)
		}
	}
	return s
}
