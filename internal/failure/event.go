// Package failure models the failure substrate of the paper: raw RAS event
// logs, the filtering pipeline that isolates job-killing failures from them
// (per §4.3, following the BlueGene/L filtering methodology), and the
// resulting failure trace with per-event static detectability used by the
// event predictor.
package failure

import (
	"fmt"

	"probqos/internal/units"
)

// Severity classifies a raw RAS event. Only Fatal and Failure events can
// kill a job; lower severities are the "patterns of misbehavior" that
// precede failures and make them predictable.
type Severity int

// Severity levels, lowest to highest.
const (
	Info Severity = iota + 1
	Warning
	Error
	Fatal
	Failure
)

var severityNames = map[Severity]string{
	Info:    "INFO",
	Warning: "WARNING",
	Error:   "ERROR",
	Fatal:   "FATAL",
	Failure: "FAILURE",
}

func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Subsystem labels the component a raw event came from. The filter treats
// same-subsystem events that are close in time as sharing a root cause.
type Subsystem string

// Subsystems seen in large-cluster RAS logs.
const (
	SubsystemMemory  Subsystem = "memory"
	SubsystemNetwork Subsystem = "network"
	SubsystemDisk    Subsystem = "disk"
	SubsystemCPU     Subsystem = "cpu"
	SubsystemSoft    Subsystem = "software"
	SubsystemPower   Subsystem = "power"
)

// Subsystems lists every subsystem label the generator emits.
var Subsystems = []Subsystem{
	SubsystemMemory, SubsystemNetwork, SubsystemDisk,
	SubsystemCPU, SubsystemSoft, SubsystemPower,
}

// RawEvent is one line of an unfiltered RAS log.
type RawEvent struct {
	Time      units.Time
	Node      int
	Severity  Severity
	Subsystem Subsystem
}

// Event is one filtered failure: a critical event that immediately kills
// any job running on the node at that time.
type Event struct {
	// Time is the failure instant t_x.
	Time units.Time
	// Node is the failed node.
	Node int
	// Detectability is the static p_x in [0, 1] assigned to this failure.
	// A predictor with accuracy a "sees" the failure iff p_x <= a, and
	// reports p_x as the probability of failure (§4.3).
	Detectability float64
}
