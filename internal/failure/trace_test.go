package failure

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"probqos/internal/units"
)

func mustTrace(t *testing.T, nodes int, events []Event) *Trace {
	t.Helper()
	tr, err := NewTrace(nodes, events)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTraceValidation(t *testing.T) {
	tests := []struct {
		name    string
		nodes   int
		events  []Event
		wantErr bool
	}{
		{name: "ok", nodes: 4, events: []Event{{Time: 1, Node: 0, Detectability: 0.5}}},
		{name: "zero nodes", nodes: 0, wantErr: true},
		{name: "node out of range", nodes: 4, events: []Event{{Node: 4}}, wantErr: true},
		{name: "negative node", nodes: 4, events: []Event{{Node: -1}}, wantErr: true},
		{name: "bad detectability", nodes: 4, events: []Event{{Node: 0, Detectability: 1.5}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewTrace(tt.nodes, tt.events)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewTrace error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTraceSortsEvents(t *testing.T) {
	tr := mustTrace(t, 4, []Event{
		{Time: 300, Node: 1}, {Time: 100, Node: 2}, {Time: 200, Node: 3},
	})
	events := tr.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("events not sorted")
		}
	}
	if tr.At(0).Node != 2 {
		t.Errorf("At(0) = %+v", tr.At(0))
	}
}

func TestNextOnNode(t *testing.T) {
	tr := mustTrace(t, 4, []Event{
		{Time: 100, Node: 1}, {Time: 200, Node: 1}, {Time: 150, Node: 2},
	})
	tests := []struct {
		name   string
		node   int
		from   units.Time
		want   units.Time
		wantOK bool
	}{
		{name: "first", node: 1, from: 0, want: 100, wantOK: true},
		{name: "inclusive", node: 1, from: 100, want: 100, wantOK: true},
		{name: "second", node: 1, from: 101, want: 200, wantOK: true},
		{name: "past end", node: 1, from: 201, wantOK: false},
		{name: "never fails", node: 3, from: 0, wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, ok := tr.NextOnNode(tt.node, tt.from)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && e.Time != tt.want {
				t.Errorf("time = %v, want %v", e.Time, tt.want)
			}
		})
	}
}

func TestWindow(t *testing.T) {
	tr := mustTrace(t, 8, []Event{
		{Time: 100, Node: 1}, {Time: 200, Node: 2}, {Time: 300, Node: 3},
		{Time: 400, Node: 1}, {Time: 250, Node: 5},
	})
	got := tr.Window([]int{1, 2}, 100, 400)
	if len(got) != 2 {
		t.Fatalf("window returned %d events: %+v", len(got), got)
	}
	if got[0].Time != 100 || got[1].Time != 200 {
		t.Errorf("window events = %+v", got)
	}
	// to is exclusive, from inclusive
	if got := tr.Window([]int{1}, 101, 400); len(got) != 0 {
		t.Errorf("exclusive window returned %+v", got)
	}
	if got := tr.Window([]int{1}, 101, 401); len(got) != 1 {
		t.Errorf("window should include t=400: %+v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := mustTrace(t, 4, []Event{
		{Time: 1, Node: 0}, {Time: 2, Node: 1}, {Time: 3, Node: 2},
	})
	seen := 0
	tr.Scan([]int{0, 1, 2}, 0, 10, func(Event) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Errorf("scan visited %d events after early stop, want 2", seen)
	}
}

func TestScanMergesInTimeOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const nodes = 8
		events := make([]Event, 0, len(raw))
		for i, r := range raw {
			events = append(events, Event{
				Time: units.Time(r % 1000), Node: i % nodes, Detectability: 0.5,
			})
		}
		tr, err := NewTrace(nodes, events)
		if err != nil {
			return false
		}
		var got []Event
		tr.Scan([]int{0, 1, 2, 3, 4, 5, 6, 7}, 0, 1000, func(e Event) bool {
			got = append(got, e)
			return true
		})
		if len(got) != len(events) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Time < got[j].Time })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	orig, err := GenerateTrace(RawConfig{Episodes: 100, Seed: 3}, FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCSV(128, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != orig.Len() {
		t.Fatalf("round trip changed length: %d -> %d", orig.Len(), parsed.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		a, b := orig.At(i), parsed.At(i)
		if a.Time != b.Time || a.Node != b.Node {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
		if diff := a.Detectability - b.Detectability; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("event %d detectability differs: %v vs %v", i, a.Detectability, b.Detectability)
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "wrong fields", give: "1,2\n"},
		{name: "bad time", give: "x,2,0.5\n"},
		{name: "bad node", give: "1,x,0.5\n"},
		{name: "bad detectability", give: "1,2,x\n"},
		{name: "node out of range", give: "1,500,0.5\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseCSV(128, strings.NewReader(tt.give)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNodeEvents(t *testing.T) {
	tr := mustTrace(t, 4, []Event{
		{Time: 300, Node: 1}, {Time: 100, Node: 1}, {Time: 200, Node: 2},
	})
	got := tr.NodeEvents(1)
	if len(got) != 2 || got[0].Time != 100 || got[1].Time != 300 {
		t.Errorf("NodeEvents(1) = %+v", got)
	}
	if got := tr.NodeEvents(3); len(got) != 0 {
		t.Errorf("NodeEvents(3) = %+v, want empty", got)
	}
}

func TestStatsSmallTraces(t *testing.T) {
	tr := mustTrace(t, 4, []Event{{Time: 5, Node: 0}})
	if s := tr.Stats(); s.Failures != 1 || s.ClusterMTBF != 0 {
		t.Errorf("single-event stats = %+v", s)
	}
}

func TestSeverityString(t *testing.T) {
	if Fatal.String() != "FATAL" || Severity(99).String() != "Severity(99)" {
		t.Error("severity names wrong")
	}
}

func TestParseCSVNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		tr, err := ParseCSV(128, bytes.NewReader(raw))
		if err != nil {
			return true
		}
		// Anything accepted must be a valid trace.
		for i := 0; i < tr.Len(); i++ {
			e := tr.At(i)
			if e.Node < 0 || e.Node >= 128 || e.Detectability < 0 || e.Detectability > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// batchTestTrace builds a dense small-cluster trace from raw fuzz input with
// deliberate time collisions (times mod 50) and coarse detectability steps,
// so batched queries face ties in both dimensions.
func batchTestTrace(raw []uint16, nodes int) (*Trace, error) {
	events := make([]Event, 0, len(raw))
	for i, r := range raw {
		events = append(events, Event{
			Time:          units.Time(r % 50),
			Node:          i % nodes,
			Detectability: float64(r%5) / 4,
		})
	}
	return NewTrace(nodes, events)
}

// TestFirstDetectableOnNodesMatchesScanProperty is the differential gate for
// the batched partition query: on random windows with heavy time ties, the
// min-trace-position answer must be the exact event a time-ordered Scan
// delivers first under the same detectability cut.
func TestFirstDetectableOnNodesMatchesScanProperty(t *testing.T) {
	f := func(raw []uint16, fromRaw, toRaw uint8, detRaw uint8) bool {
		const nodes = 6
		tr, err := batchTestTrace(raw, nodes)
		if err != nil {
			return false
		}
		from := units.Time(fromRaw % 60)
		to := from + units.Time(toRaw%60)
		maxDet := float64(detRaw%6) / 5
		queried := []int{0, 2, 3, 5}

		var want Event
		wantOK := false
		tr.Scan(queried, from, to, func(e Event) bool {
			if e.Detectability <= maxDet {
				want, wantOK = e, true
				return false
			}
			return true
		})
		got, gotOK := tr.FirstDetectableOnNodes(queried, from, to, maxDet)
		if gotOK != wantOK {
			t.Logf("ok mismatch: got %v want %v (from=%v to=%v maxDet=%v)", gotOK, wantOK, from, to, maxDet)
			return false
		}
		return !gotOK || got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAppendPFailBatchMatchesPerNodeProperty pins the batched scoring query
// to its serial definition: one AppendPFailBatch call must reproduce, per
// node and in order, what FirstDetectableOnNode reports for that node alone.
func TestAppendPFailBatchMatchesPerNodeProperty(t *testing.T) {
	f := func(raw []uint16, fromRaw, toRaw uint8, detRaw uint8) bool {
		const nodes = 6
		tr, err := batchTestTrace(raw, nodes)
		if err != nil {
			return false
		}
		from := units.Time(fromRaw % 60)
		to := from + units.Time(toRaw%60)
		maxDet := float64(detRaw%6) / 5
		queried := []int{5, 0, 3, 3, 1} // out of order, with a repeat

		got := tr.AppendPFailBatch(nil, queried, from, to, maxDet)
		if len(got) != len(queried) {
			return false
		}
		for i, n := range queried {
			var want float64
			if e, ok := tr.FirstDetectableOnNode(n, from, to, maxDet); ok {
				want = e.Detectability
			}
			if got[i] != want {
				t.Logf("node %d: got %v want %v (from=%v to=%v maxDet=%v)", n, got[i], want, from, to, maxDet)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAppendPFailBatchAppends pins the append contract: existing contents
// stay put and capacity is reused.
func TestAppendPFailBatchAppends(t *testing.T) {
	tr := mustTrace(t, 2, []Event{{Time: 10, Node: 1, Detectability: 0.5}})
	buf := make([]float64, 1, 8)
	buf[0] = -1
	got := tr.AppendPFailBatch(buf, []int{0, 1}, 0, 100, 1)
	if len(got) != 3 || got[0] != -1 || got[1] != 0 || got[2] != 0.5 {
		t.Fatalf("AppendPFailBatch = %v, want [-1 0 0.5]", got)
	}
	if &got[0] != &buf[0] {
		t.Error("AppendPFailBatch reallocated despite spare capacity")
	}
}
