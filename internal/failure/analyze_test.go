package failure

import (
	"strings"
	"testing"

	"probqos/internal/units"
)

func TestAnalyzeRawLog(t *testing.T) {
	events := []RawEvent{
		{Time: 0, Node: 0, Severity: Info, Subsystem: SubsystemDisk},
		{Time: 100, Node: 1, Severity: Fatal, Subsystem: SubsystemDisk},
		{Time: 200, Node: 2, Severity: Failure, Subsystem: SubsystemCPU},
		{Time: units.Time(units.Day), Node: 3, Severity: Warning, Subsystem: SubsystemCPU},
	}
	s := AnalyzeRawLog(events)
	if s.Events != 4 || s.Critical != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.BySeverity[Fatal] != 1 || s.BySubsystem[SubsystemCPU] != 2 {
		t.Errorf("maps = %+v", s)
	}
	if s.Span != units.Day {
		t.Errorf("span = %v", s.Span)
	}
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"events:", "FATAL", "cpu", "2 critical"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestAnalyzeRawLogEmpty(t *testing.T) {
	s := AnalyzeRawLog(nil)
	if s.Events != 0 || s.Span != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestTraceSlice(t *testing.T) {
	tr := mustTrace(t, 4, []Event{
		{Time: 100, Node: 0, Detectability: 0.1},
		{Time: 500, Node: 1, Detectability: 0.2},
		{Time: 900, Node: 2, Detectability: 0.3},
	})
	sliced, err := tr.Slice(400, 900)
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Len() != 1 {
		t.Fatalf("sliced %d events, want 1", sliced.Len())
	}
	got := sliced.At(0)
	if got.Time != 100 || got.Node != 1 {
		t.Errorf("rebased event = %+v, want time 100 on node 1", got)
	}
	// Empty slice is valid.
	empty, err := tr.Slice(2000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("empty slice has %d events", empty.Len())
	}
}
