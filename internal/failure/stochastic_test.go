package failure

import (
	"math"
	"testing"

	"probqos/internal/units"
)

func TestGenerateStochasticExponential(t *testing.T) {
	tr, err := GenerateStochastic(StochasticConfig{Kind: Exponential, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	// One year at MTBF 8.5 h -> ~1030 failures.
	if math.Abs(float64(s.Failures)-1030) > 120 {
		t.Errorf("failures = %d, want ~1030", s.Failures)
	}
	if math.Abs(s.ClusterMTBF.Hours()-8.5) > 1.0 {
		t.Errorf("MTBF = %.2fh, want ~8.5", s.ClusterMTBF.Hours())
	}
	// A Poisson process has gap CV ~= 1.
	if cv := tr.GapCV(); math.Abs(cv-1) > 0.15 {
		t.Errorf("exponential gap CV = %.2f, want ~1", cv)
	}
}

func TestGenerateStochasticWeibullIsBurstier(t *testing.T) {
	exp, err := GenerateStochastic(StochasticConfig{Kind: Exponential, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := GenerateStochastic(StochasticConfig{Kind: WeibullDecreasing, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if wb.GapCV() <= exp.GapCV()+0.2 {
		t.Errorf("Weibull CV %.2f should clearly exceed exponential CV %.2f",
			wb.GapCV(), exp.GapCV())
	}
	// Both hit the same mean rate.
	ratio := float64(wb.Len()) / float64(exp.Len())
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("rate mismatch: weibull %d vs exponential %d failures", wb.Len(), exp.Len())
	}
}

func TestGenerateStochasticValidation(t *testing.T) {
	if _, err := GenerateStochastic(StochasticConfig{ClusterMTBF: -1}); err == nil {
		t.Error("negative MTBF should fail")
	}
	if _, err := GenerateStochastic(StochasticConfig{Kind: StochasticKind(9)}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestGenerateStochasticNodeModes(t *testing.T) {
	skewed, err := GenerateStochastic(StochasticConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := GenerateStochastic(StochasticConfig{Seed: 3, UniformNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	maxShare := func(tr *Trace) float64 {
		counts := make(map[int]int)
		for _, e := range tr.Events() {
			counts[e.Node]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(tr.Len())
	}
	if maxShare(skewed) <= 1.8*maxShare(uniform) {
		t.Errorf("skewed max node share %.3f should clearly exceed uniform %.3f",
			maxShare(skewed), maxShare(uniform))
	}
}

func TestGenerateStochasticDeterminism(t *testing.T) {
	a, err := GenerateStochastic(StochasticConfig{Seed: 4, Span: 60 * units.Day})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStochastic(StochasticConfig{Seed: 4, Span: 60 * units.Day})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestStochasticKindString(t *testing.T) {
	if Exponential.String() != "exponential" || WeibullDecreasing.String() != "weibull" {
		t.Error("kind names wrong")
	}
	if StochasticKind(7).String() != "StochasticKind(7)" {
		t.Error("unknown kind name wrong")
	}
}

func TestGapCVDegenerate(t *testing.T) {
	tr := mustTrace(t, 4, []Event{{Time: 1, Node: 0}})
	if tr.GapCV() != 0 {
		t.Error("tiny trace CV should be 0")
	}
}

func TestTraceDrivenBurstierThanPoisson(t *testing.T) {
	// The central claim behind using real traces: the trace-driven
	// generator is burstier than the exponential model at equal rate.
	real, err := GenerateTrace(RawConfig{Seed: 5}, FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := GenerateStochastic(StochasticConfig{Kind: Exponential, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if real.GapCV() <= model.GapCV()+0.3 {
		t.Errorf("trace CV %.2f should clearly exceed Poisson CV %.2f",
			real.GapCV(), model.GapCV())
	}
}
