package failure

import (
	"bytes"
	"testing"
)

func FuzzParseCSV(f *testing.F) {
	f.Add([]byte("time,node,detectability\n100,5,0.25\n"))
	f.Add([]byte("# comment\n1,2,0.9\n"))
	f.Add([]byte("1,2\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := ParseCSV(64, bytes.NewReader(raw))
		if err != nil {
			return
		}
		for i := 0; i < tr.Len(); i++ {
			e := tr.At(i)
			if e.Node < 0 || e.Node >= 64 || e.Detectability < 0 || e.Detectability > 1 {
				t.Fatalf("parser accepted invalid event %+v", e)
			}
		}
	})
}

func FuzzParseRawLog(f *testing.F) {
	f.Add([]byte("# raw\n100 3 FATAL disk\n200 4 WARNING cpu\n"))
	f.Add([]byte("junk\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		events, err := ParseRawLog(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteRawLog(&buf, events); err != nil {
			t.Fatalf("accepted raw log failed to serialize: %v", err)
		}
	})
}
