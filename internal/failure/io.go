package failure

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probqos/internal/units"
)

// WriteCSV writes the trace as "time,node,detectability" lines with a
// header comment, the on-disk format cmd/tracegen emits and cmd/qossim
// reads.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# failure trace: nodes=%d failures=%d\n", t.nodes, len(t.events))
	fmt.Fprintln(bw, "time,node,detectability")
	for _, e := range t.events {
		if _, err := fmt.Fprintf(bw, "%d,%d,%.9f\n", int64(e.Time), e.Node, e.Detectability); err != nil {
			return fmt.Errorf("failure: write trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("failure: write trace: %w", err)
	}
	return nil
}

// ParseCSV reads a trace written by WriteCSV. The nodes argument gives the
// cluster size the trace applies to.
func ParseCSV(nodes int, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "time,") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("failure: line %d: %d fields, want 3", lineNo, len(parts))
		}
		tm, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("failure: line %d: time: %w", lineNo, err)
		}
		node, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("failure: line %d: node: %w", lineNo, err)
		}
		px, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("failure: line %d: detectability: %w", lineNo, err)
		}
		events = append(events, Event{Time: units.Time(tm), Node: node, Detectability: px})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("failure: read trace: %w", err)
	}
	return NewTrace(nodes, events)
}
