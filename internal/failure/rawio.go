package failure

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probqos/internal/units"
)

// WriteRawLog writes an unfiltered RAS log as whitespace-separated
// "time node severity subsystem" lines, the format cmd/tracegen emits and
// cmd/tracefilter consumes.
func WriteRawLog(w io.Writer, events []RawEvent) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# raw RAS log: events=%d\n", len(events))
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%d %d %s %s\n", int64(e.Time), e.Node, e.Severity, e.Subsystem); err != nil {
			return fmt.Errorf("failure: write raw log: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("failure: write raw log: %w", err)
	}
	return nil
}

var severityByName = map[string]Severity{
	"INFO":    Info,
	"WARNING": Warning,
	"ERROR":   Error,
	"FATAL":   Fatal,
	"FAILURE": Failure,
}

// ParseRawLog reads a log written by WriteRawLog.
func ParseRawLog(r io.Reader) ([]RawEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var events []RawEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("failure: raw log line %d: %d fields, want 4", lineNo, len(fields))
		}
		tm, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("failure: raw log line %d: time: %w", lineNo, err)
		}
		node, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("failure: raw log line %d: node: %w", lineNo, err)
		}
		sev, ok := severityByName[fields[2]]
		if !ok {
			return nil, fmt.Errorf("failure: raw log line %d: unknown severity %q", lineNo, fields[2])
		}
		events = append(events, RawEvent{
			Time:      units.Time(tm),
			Node:      node,
			Severity:  sev,
			Subsystem: Subsystem(fields[3]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("failure: read raw log: %w", err)
	}
	return events, nil
}
