package failure

import (
	"math"
	"sort"

	"probqos/internal/stats"
	"probqos/internal/units"
)

// RawConfig parameterizes the raw RAS log generator.
//
// The generator substitutes for the harvested 400-machine AIX event log the
// paper used (no supercomputer failure trace was publicly available then, and
// this module builds offline). It reproduces the properties the paper says
// matter: bursty failure arrivals, per-node skew (a few flaky nodes), and
// fatal events preceded by lower-severity misbehavior and accompanied by
// redundant same-root-cause events that filtering must remove.
type RawConfig struct {
	// Nodes is the cluster size. Defaults to 128.
	Nodes int
	// Span is the log duration. Defaults to one year.
	Span units.Duration
	// Seed selects the deterministic random stream.
	Seed int64
	// Episodes is the number of root-cause fault episodes. Each episode
	// yields exactly one filtered failure. Defaults to 1021, the filtered
	// count in the paper (cluster MTBF 8.5 h over a year on 128 nodes).
	Episodes int
	// BurstShape < 1 makes episode inter-arrival gaps heavy-tailed
	// (bursty). Defaults to 0.45.
	BurstShape float64
	// NoisePerNodePerDay is the rate of benign INFO/WARNING background
	// events per node per day. Defaults to 4.
	NoisePerNodePerDay float64
}

func (c RawConfig) withDefaults() RawConfig {
	if c.Nodes == 0 {
		c.Nodes = 128
	}
	if c.Span == 0 {
		c.Span = units.Year
	}
	if c.Episodes == 0 {
		c.Episodes = 1021
	}
	if c.BurstShape <= 0 {
		c.BurstShape = 0.45
	}
	if c.NoisePerNodePerDay <= 0 {
		c.NoisePerNodePerDay = 4
	}
	return c
}

// GenerateRawLog produces an unfiltered RAS event log: benign background
// noise, precursor warnings, fatal events, and redundant fatal duplicates
// that share a root cause with a nearby fatal event.
func GenerateRawLog(cfg RawConfig) []RawEvent {
	cfg = cfg.withDefaults()
	src := stats.NewSource(cfg.Seed ^ 0x5fe7a31)
	epSrc := src.Split("episodes")
	nodeSrc := src.Split("nodes")
	noiseSrc := src.Split("noise")

	var events []RawEvent

	// Per-node flakiness skew: Zipf-ish weights so a handful of nodes
	// account for a disproportionate share of failures, as observed in the
	// AIX study (Sahoo et al. 2004).
	weights := make([]float64, cfg.Nodes)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -0.45)
	}
	nodeSrc.Shuffle(cfg.Nodes, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	nodePick := stats.NewWeightedChoice(weights)

	// Episode arrival times: bursty Weibull gaps normalized to the span.
	gaps := make([]float64, cfg.Episodes)
	var gapSum float64
	for i := range gaps {
		gaps[i] = epSrc.Weibull(cfg.BurstShape, 1)
		gapSum += gaps[i]
	}
	scale := cfg.Span.Seconds() / gapSum
	t := 0.0
	for i := 0; i < cfg.Episodes; i++ {
		t += gaps[i] * scale
		at := units.Time(math.Round(t))
		node := nodePick.Sample(epSrc)
		sub := Subsystems[epSrc.Intn(len(Subsystems))]

		// Precursor misbehavior: warnings/errors in the minutes to hours
		// before the fatal event. These are what real predictors learn
		// from; here they document the causal texture the filter must look
		// past.
		for k, n := 0, 1+epSrc.Intn(4); k < n; k++ {
			lead := units.Duration(60 + epSrc.Intn(4*int(units.Hour)))
			sev := Warning
			if epSrc.Bool(0.4) {
				sev = Error
			}
			events = append(events, RawEvent{
				Time: at.Add(-lead), Node: node, Severity: sev, Subsystem: sub,
			})
		}

		// The fatal event itself.
		sev := Fatal
		if epSrc.Bool(0.5) {
			sev = Failure
		}
		events = append(events, RawEvent{Time: at, Node: node, Severity: sev, Subsystem: sub})

		// Redundant fatals sharing the root cause: repeats on the same node
		// within seconds, and with some probability a sympathetic fatal on
		// another node (e.g. a shared switch). The filter must coalesce all
		// of these into the one episode failure.
		for k, n := 0, epSrc.Intn(3); k < n; k++ {
			events = append(events, RawEvent{
				Time: at.Add(units.Duration(1 + epSrc.Intn(90))), Node: node,
				Severity: sev, Subsystem: sub,
			})
		}
		if epSrc.Bool(0.25) {
			other := nodePick.Sample(epSrc)
			events = append(events, RawEvent{
				Time: at.Add(units.Duration(1 + epSrc.Intn(60))), Node: other,
				Severity: Fatal, Subsystem: sub,
			})
		}
	}

	// Benign background noise across all nodes.
	days := cfg.Span.Seconds() / units.Day.Seconds()
	noiseCount := noiseSrc.Poisson(cfg.NoisePerNodePerDay * float64(cfg.Nodes) * days)
	for i := 0; i < noiseCount; i++ {
		sev := Info
		if noiseSrc.Bool(0.25) {
			sev = Warning
		}
		events = append(events, RawEvent{
			Time:      units.Time(noiseSrc.Int63n(int64(cfg.Span))),
			Node:      noiseSrc.Intn(cfg.Nodes),
			Severity:  sev,
			Subsystem: Subsystems[noiseSrc.Intn(len(Subsystems))],
		})
	}

	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events
}

// FilterConfig parameterizes the raw-log filtering pipeline.
type FilterConfig struct {
	// Window is the coalescing window: critical events in the same
	// subsystem within Window of an already-kept failure are treated as
	// sharing its root cause and dropped. Defaults to 5 minutes, in line
	// with the BlueGene/L filtering study.
	Window units.Duration
	// Seed selects the stream used to assign static detectabilities p_x to
	// the surviving failures.
	Seed int64
}

func (c FilterConfig) withDefaults() FilterConfig {
	if c.Window == 0 {
		c.Window = 5 * units.Minute
	}
	return c
}

// Filter runs the two-stage filtering pipeline of §4.3 on a raw log:
//
//  1. isolate events of the highest severities (FATAL and FAILURE);
//  2. coalesce clusters of critical events that share a root cause —
//     same-subsystem events within the coalescing window, whether on the
//     same node (repeats) or on other nodes (sympathetic failures) — keeping
//     only the first event of each cluster.
//
// Each surviving failure is assigned a static detectability p_x drawn
// uniformly from [0, 1), per §4.3. The result is a trace over a cluster of
// nodes nodes.
func Filter(raw []RawEvent, nodes int, cfg FilterConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	critical := make([]RawEvent, 0, len(raw)/4)
	for _, e := range raw {
		if e.Severity >= Fatal {
			critical = append(critical, e)
		}
	}
	sort.SliceStable(critical, func(i, j int) bool { return critical[i].Time < critical[j].Time })

	// lastKept[subsystem] is the time of the most recently kept failure in
	// that subsystem; anything critical in the same subsystem within the
	// window shares its root cause.
	lastKept := make(map[Subsystem]units.Time, len(Subsystems))
	detect := stats.NewSource(cfg.Seed ^ 0x9e3779b9)
	var kept []Event
	for _, e := range critical {
		if t, ok := lastKept[e.Subsystem]; ok && e.Time.Sub(t) < cfg.Window {
			continue
		}
		lastKept[e.Subsystem] = e.Time
		kept = append(kept, Event{
			Time:          e.Time,
			Node:          e.Node,
			Detectability: detect.Float64(),
		})
	}
	return NewTrace(nodes, kept)
}

// GenerateTrace is the convenience path: generate a raw log and filter it.
// It is what the simulator-facing callers use; cmd/tracefilter exposes the
// two stages separately.
func GenerateTrace(cfg RawConfig, fcfg FilterConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	if fcfg.Seed == 0 {
		fcfg.Seed = cfg.Seed
	}
	return Filter(GenerateRawLog(cfg), cfg.Nodes, fcfg)
}
