package failure

import (
	"fmt"
	"math"

	"probqos/internal/stats"
	"probqos/internal/units"
)

// StochasticKind selects a classical statistical failure model. The paper
// argues (citing Plank & Elwasif) that such models are poor stand-ins for
// real traces because they miss burstiness and per-node skew; the
// stochastic generator exists to demonstrate exactly that, as the paper's
// suggested follow-up study.
type StochasticKind int

// Stochastic model kinds.
const (
	// Exponential draws i.i.d. exponential inter-failure gaps (a Poisson
	// process): the memoryless textbook model.
	Exponential StochasticKind = iota + 1
	// WeibullDecreasing draws Weibull gaps with shape < 1: a decreasing
	// hazard that clusters failures, the empirically better fit.
	WeibullDecreasing
)

func (k StochasticKind) String() string {
	switch k {
	case Exponential:
		return "exponential"
	case WeibullDecreasing:
		return "weibull"
	}
	return fmt.Sprintf("StochasticKind(%d)", int(k))
}

// StochasticConfig parameterizes GenerateStochastic.
type StochasticConfig struct {
	// Kind selects the gap distribution. Defaults to Exponential.
	Kind StochasticKind
	// Nodes is the cluster size. Defaults to 128.
	Nodes int
	// Span is the trace duration. Defaults to one year.
	Span units.Duration
	// ClusterMTBF is the cluster-wide mean time between failures.
	// Defaults to 8.5 hours, matching the paper's trace.
	ClusterMTBF units.Duration
	// Shape is the Weibull shape for WeibullDecreasing. Defaults to 0.6.
	Shape float64
	// Seed selects the random stream.
	Seed int64
	// UniformNodes places each failure on a uniformly random node instead
	// of the skewed (Zipf-like) node distribution of real clusters.
	UniformNodes bool
}

func (c StochasticConfig) withDefaults() StochasticConfig {
	if c.Kind == 0 {
		c.Kind = Exponential
	}
	if c.Nodes == 0 {
		c.Nodes = 128
	}
	if c.Span == 0 {
		c.Span = units.Year
	}
	if c.ClusterMTBF == 0 {
		c.ClusterMTBF = units.Duration(8.5 * float64(units.Hour))
	}
	if c.Shape <= 0 {
		c.Shape = 0.6
	}
	return c
}

// GenerateStochastic draws a failure trace from a purely statistical model
// with the same mean rate as the trace-driven generator but none of its
// causal texture (no raw log, no root-cause structure). Detectabilities
// are assigned uniformly as in §4.3.
func GenerateStochastic(cfg StochasticConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.ClusterMTBF <= 0 || cfg.Span <= 0 {
		return nil, fmt.Errorf("failure: stochastic model needs positive span and MTBF")
	}
	if cfg.Kind != Exponential && cfg.Kind != WeibullDecreasing {
		return nil, fmt.Errorf("failure: unknown stochastic kind %d", int(cfg.Kind))
	}
	src := stats.NewSource(cfg.Seed ^ 0x7a3d9f2)
	gapSrc := src.Split("gaps")
	nodeSrc := src.Split("nodes")
	detSrc := src.Split("detect")

	// Weibull with shape k and scale s has mean s*Gamma(1+1/k); match the
	// requested MTBF exactly.
	mean := cfg.ClusterMTBF.Seconds()
	weibullScale := mean / math.Gamma(1+1/cfg.Shape)

	nodePick := nodePicker(nodeSrc, cfg.Nodes, cfg.UniformNodes)

	var events []Event
	for t := 0.0; ; {
		var gap float64
		switch cfg.Kind {
		case Exponential:
			gap = gapSrc.Exp(mean)
		case WeibullDecreasing:
			gap = gapSrc.Weibull(cfg.Shape, weibullScale)
		}
		t += gap
		if t >= cfg.Span.Seconds() {
			break
		}
		events = append(events, Event{
			Time:          units.Time(math.Round(t)),
			Node:          nodePick(),
			Detectability: detSrc.Float64(),
		})
	}
	return NewTrace(cfg.Nodes, events)
}

// nodePicker returns a node sampler: uniform, or Zipf-skewed like the
// trace-driven generator.
func nodePicker(src *stats.Source, nodes int, uniform bool) func() int {
	if uniform {
		return func() int { return src.Intn(nodes) }
	}
	weights := make([]float64, nodes)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -0.45)
	}
	src.Shuffle(nodes, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	pick := stats.NewWeightedChoice(weights)
	return func() int { return pick.Sample(src) }
}

// GapCV returns the coefficient of variation of a trace's inter-failure
// gaps: 1 for a Poisson process, above 1 for bursty traces. It quantifies
// the burstiness that separates real failure behaviour from the
// exponential model (Plank & Elwasif; §5.1 "jaggedness" discussion).
func (t *Trace) GapCV() float64 {
	if len(t.events) < 3 {
		return 0
	}
	var gaps []float64
	for i := 1; i < len(t.events); i++ {
		gaps = append(gaps, t.events[i].Time.Sub(t.events[i-1].Time).Seconds())
	}
	s := stats.Summarize(gaps)
	if s.Mean <= 0 {
		return 0
	}
	return s.Stddev / s.Mean
}
