package failure

import (
	"bytes"
	"strings"
	"testing"

	"probqos/internal/units"
)

func TestRawLogRoundTrip(t *testing.T) {
	orig := GenerateRawLog(RawConfig{Episodes: 30, Span: 10 * units.Day, Seed: 4})
	var buf bytes.Buffer
	if err := WriteRawLog(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseRawLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("round trip changed length: %d -> %d", len(orig), len(parsed))
	}
	for i := range orig {
		if parsed[i] != orig[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, parsed[i], orig[i])
		}
	}
}

func TestParseRawLogErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "wrong field count", give: "1 2 FATAL\n"},
		{name: "bad time", give: "x 2 FATAL disk\n"},
		{name: "bad node", give: "1 x FATAL disk\n"},
		{name: "bad severity", give: "1 2 CATASTROPHIC disk\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseRawLog(strings.NewReader(tt.give)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestParseRawLogSkipsComments(t *testing.T) {
	events, err := ParseRawLog(strings.NewReader("# header\n\n5 3 FATAL disk\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Node != 3 {
		t.Errorf("events = %+v", events)
	}
}
