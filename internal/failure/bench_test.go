package failure

import (
	"testing"

	"probqos/internal/units"
)

// BenchmarkGenerateAndFilter measures the full trace pipeline: raw log
// generation plus root-cause filtering for a year of 128-node history.
func BenchmarkGenerateAndFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace(RawConfig{Seed: int64(i)}, FilterConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceScan measures the windowed multi-node query the predictor
// performs on every risk estimate.
func BenchmarkTraceScan(b *testing.B) {
	tr, err := GenerateTrace(RawConfig{Seed: 3}, FilterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]int, 16)
	for i := range nodes {
		nodes[i] = i * 8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := units.Time(i%2000) * 3600
		tr.Scan(nodes, from, from.Add(6*units.Hour), func(Event) bool { return true })
	}
}
