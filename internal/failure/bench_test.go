package failure

import (
	"testing"

	"probqos/internal/units"
)

// BenchmarkGenerateAndFilter measures the full trace pipeline: raw log
// generation plus root-cause filtering for a year of 128-node history.
func BenchmarkGenerateAndFilter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace(RawConfig{Seed: int64(i)}, FilterConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceScan measures the windowed multi-node query the predictor
// performs on every risk estimate.
func BenchmarkTraceScan(b *testing.B) {
	benchScan(b, 16)
}

// BenchmarkTraceScanSingleNode measures the single-node window query that
// ScanNode answers without a cursor slice or tournament merge.
func BenchmarkTraceScanSingleNode(b *testing.B) {
	benchScan(b, 1)
}

func benchScan(b *testing.B, width int) {
	tr, err := GenerateTrace(RawConfig{Seed: 3}, FilterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]int, width)
	for i := range nodes {
		nodes[i] = i * (128 / width)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := units.Time(i%2000) * 3600
		tr.Scan(nodes, from, from.Add(6*units.Hour), func(Event) bool { return true })
	}
}
