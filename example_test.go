package probqos_test

import (
	"fmt"

	"probqos"
)

// ExampleRun replays a tiny deterministic workload against a single known
// failure and reports the paper's metrics.
func ExampleRun() {
	jobs := &probqos.JobLog{Name: "demo", Jobs: []probqos.Job{
		{ID: 1, Arrival: 0, Nodes: 4, Exec: 600},
		{ID: 2, Arrival: 30, Nodes: 8, Exec: 1200},
	}}
	trace, _ := probqos.NewFailureTrace(128, []probqos.FailureEvent{
		{Time: 100000, Node: 5, Detectability: 0.5},
	})
	cfg := probqos.NewSimConfig(jobs, trace)
	cfg.Accuracy = 1
	cfg.UserRisk = 0.9
	res, _ := probqos.Run(cfg)
	r := probqos.Metrics(res)
	fmt.Printf("jobs %d, QoS %.2f, lost %d node-s\n", len(res.Jobs), r.QoS, int64(r.LostWork))
	// Output: jobs 2, QoS 1.00, lost 0 node-s
}

// ExampleSystem_Quotes shows the negotiation ladder: the same job quoted
// before and after a predicted failure.
func ExampleSystem_Quotes() {
	var events []probqos.FailureEvent
	for n := 0; n < 8; n++ {
		events = append(events, probqos.FailureEvent{Time: 1800, Node: n, Detectability: 0.4})
	}
	trace, _ := probqos.NewFailureTrace(8, events)
	system, _ := probqos.NewSystem(8, trace, 1.0)
	for i, q := range system.Quotes(0, 8, 3600, 2) {
		fmt.Printf("offer %d: deadline %d, p=%.2f\n", i+1, int64(q.Deadline), q.Success)
	}
	// Output:
	// offer 1: deadline 3600, p=0.60
	// offer 2: deadline 5521, p=1.00
}

// ExampleUser_Accepts demonstrates Equation 3: a user with risk strategy U
// accepts the earliest offer promising at least U.
func ExampleUser_Accepts() {
	user, _ := probqos.NewUser(0.75)
	fmt.Println(user.Accepts(0.6), user.Accepts(0.75), user.Accepts(0.9))
	// Output: false true true
}

// ExampleNewTracePredictor shows the deterministic §4.3 predictor: a
// failure is visible iff its detectability is at most the accuracy, and
// the reported probability is the detectability itself.
func ExampleNewTracePredictor() {
	trace, _ := probqos.NewFailureTrace(4, []probqos.FailureEvent{
		{Time: 500, Node: 2, Detectability: 0.3},
	})
	strong, _ := probqos.NewTracePredictor(trace, 0.7)
	weak, _ := probqos.NewTracePredictor(trace, 0.2)
	fmt.Printf("a=0.7: %.1f  a=0.2: %.1f\n",
		strong.PFail([]int{2}, 0, 1000), weak.PFail([]int{2}, 0, 1000))
	// Output: a=0.7: 0.3  a=0.2: 0.0
}
